
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/angles.cpp" "src/geometry/CMakeFiles/vp_geometry.dir/angles.cpp.o" "gcc" "src/geometry/CMakeFiles/vp_geometry.dir/angles.cpp.o.d"
  "/root/repo/src/geometry/camera.cpp" "src/geometry/CMakeFiles/vp_geometry.dir/camera.cpp.o" "gcc" "src/geometry/CMakeFiles/vp_geometry.dir/camera.cpp.o.d"
  "/root/repo/src/geometry/clustering.cpp" "src/geometry/CMakeFiles/vp_geometry.dir/clustering.cpp.o" "gcc" "src/geometry/CMakeFiles/vp_geometry.dir/clustering.cpp.o.d"
  "/root/repo/src/geometry/eigen.cpp" "src/geometry/CMakeFiles/vp_geometry.dir/eigen.cpp.o" "gcc" "src/geometry/CMakeFiles/vp_geometry.dir/eigen.cpp.o.d"
  "/root/repo/src/geometry/icp.cpp" "src/geometry/CMakeFiles/vp_geometry.dir/icp.cpp.o" "gcc" "src/geometry/CMakeFiles/vp_geometry.dir/icp.cpp.o.d"
  "/root/repo/src/geometry/localize.cpp" "src/geometry/CMakeFiles/vp_geometry.dir/localize.cpp.o" "gcc" "src/geometry/CMakeFiles/vp_geometry.dir/localize.cpp.o.d"
  "/root/repo/src/geometry/optimize.cpp" "src/geometry/CMakeFiles/vp_geometry.dir/optimize.cpp.o" "gcc" "src/geometry/CMakeFiles/vp_geometry.dir/optimize.cpp.o.d"
  "/root/repo/src/geometry/pose.cpp" "src/geometry/CMakeFiles/vp_geometry.dir/pose.cpp.o" "gcc" "src/geometry/CMakeFiles/vp_geometry.dir/pose.cpp.o.d"
  "/root/repo/src/geometry/vec.cpp" "src/geometry/CMakeFiles/vp_geometry.dir/vec.cpp.o" "gcc" "src/geometry/CMakeFiles/vp_geometry.dir/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
