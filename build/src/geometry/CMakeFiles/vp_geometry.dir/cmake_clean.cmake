file(REMOVE_RECURSE
  "CMakeFiles/vp_geometry.dir/angles.cpp.o"
  "CMakeFiles/vp_geometry.dir/angles.cpp.o.d"
  "CMakeFiles/vp_geometry.dir/camera.cpp.o"
  "CMakeFiles/vp_geometry.dir/camera.cpp.o.d"
  "CMakeFiles/vp_geometry.dir/clustering.cpp.o"
  "CMakeFiles/vp_geometry.dir/clustering.cpp.o.d"
  "CMakeFiles/vp_geometry.dir/eigen.cpp.o"
  "CMakeFiles/vp_geometry.dir/eigen.cpp.o.d"
  "CMakeFiles/vp_geometry.dir/icp.cpp.o"
  "CMakeFiles/vp_geometry.dir/icp.cpp.o.d"
  "CMakeFiles/vp_geometry.dir/localize.cpp.o"
  "CMakeFiles/vp_geometry.dir/localize.cpp.o.d"
  "CMakeFiles/vp_geometry.dir/optimize.cpp.o"
  "CMakeFiles/vp_geometry.dir/optimize.cpp.o.d"
  "CMakeFiles/vp_geometry.dir/pose.cpp.o"
  "CMakeFiles/vp_geometry.dir/pose.cpp.o.d"
  "CMakeFiles/vp_geometry.dir/vec.cpp.o"
  "CMakeFiles/vp_geometry.dir/vec.cpp.o.d"
  "libvp_geometry.a"
  "libvp_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
