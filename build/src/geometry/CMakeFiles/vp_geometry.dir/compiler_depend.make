# Empty compiler generated dependencies file for vp_geometry.
# This may be replaced when dependencies are built.
