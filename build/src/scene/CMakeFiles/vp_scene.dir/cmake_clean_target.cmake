file(REMOVE_RECURSE
  "libvp_scene.a"
)
