file(REMOVE_RECURSE
  "CMakeFiles/vp_scene.dir/environments.cpp.o"
  "CMakeFiles/vp_scene.dir/environments.cpp.o.d"
  "CMakeFiles/vp_scene.dir/render.cpp.o"
  "CMakeFiles/vp_scene.dir/render.cpp.o.d"
  "CMakeFiles/vp_scene.dir/texture.cpp.o"
  "CMakeFiles/vp_scene.dir/texture.cpp.o.d"
  "CMakeFiles/vp_scene.dir/world.cpp.o"
  "CMakeFiles/vp_scene.dir/world.cpp.o.d"
  "libvp_scene.a"
  "libvp_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
