# Empty compiler generated dependencies file for vp_scene.
# This may be replaced when dependencies are built.
