
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scene/environments.cpp" "src/scene/CMakeFiles/vp_scene.dir/environments.cpp.o" "gcc" "src/scene/CMakeFiles/vp_scene.dir/environments.cpp.o.d"
  "/root/repo/src/scene/render.cpp" "src/scene/CMakeFiles/vp_scene.dir/render.cpp.o" "gcc" "src/scene/CMakeFiles/vp_scene.dir/render.cpp.o.d"
  "/root/repo/src/scene/texture.cpp" "src/scene/CMakeFiles/vp_scene.dir/texture.cpp.o" "gcc" "src/scene/CMakeFiles/vp_scene.dir/texture.cpp.o.d"
  "/root/repo/src/scene/world.cpp" "src/scene/CMakeFiles/vp_scene.dir/world.cpp.o" "gcc" "src/scene/CMakeFiles/vp_scene.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/vp_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/vp_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
