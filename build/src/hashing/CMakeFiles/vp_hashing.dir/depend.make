# Empty dependencies file for vp_hashing.
# This may be replaced when dependencies are built.
