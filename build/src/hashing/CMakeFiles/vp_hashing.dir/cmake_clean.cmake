file(REMOVE_RECURSE
  "CMakeFiles/vp_hashing.dir/binary_oracle.cpp.o"
  "CMakeFiles/vp_hashing.dir/binary_oracle.cpp.o.d"
  "CMakeFiles/vp_hashing.dir/bloom.cpp.o"
  "CMakeFiles/vp_hashing.dir/bloom.cpp.o.d"
  "CMakeFiles/vp_hashing.dir/lsh.cpp.o"
  "CMakeFiles/vp_hashing.dir/lsh.cpp.o.d"
  "CMakeFiles/vp_hashing.dir/murmur3.cpp.o"
  "CMakeFiles/vp_hashing.dir/murmur3.cpp.o.d"
  "CMakeFiles/vp_hashing.dir/oracle.cpp.o"
  "CMakeFiles/vp_hashing.dir/oracle.cpp.o.d"
  "libvp_hashing.a"
  "libvp_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
