file(REMOVE_RECURSE
  "libvp_hashing.a"
)
