
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hashing/binary_oracle.cpp" "src/hashing/CMakeFiles/vp_hashing.dir/binary_oracle.cpp.o" "gcc" "src/hashing/CMakeFiles/vp_hashing.dir/binary_oracle.cpp.o.d"
  "/root/repo/src/hashing/bloom.cpp" "src/hashing/CMakeFiles/vp_hashing.dir/bloom.cpp.o" "gcc" "src/hashing/CMakeFiles/vp_hashing.dir/bloom.cpp.o.d"
  "/root/repo/src/hashing/lsh.cpp" "src/hashing/CMakeFiles/vp_hashing.dir/lsh.cpp.o" "gcc" "src/hashing/CMakeFiles/vp_hashing.dir/lsh.cpp.o.d"
  "/root/repo/src/hashing/murmur3.cpp" "src/hashing/CMakeFiles/vp_hashing.dir/murmur3.cpp.o" "gcc" "src/hashing/CMakeFiles/vp_hashing.dir/murmur3.cpp.o.d"
  "/root/repo/src/hashing/oracle.cpp" "src/hashing/CMakeFiles/vp_hashing.dir/oracle.cpp.o" "gcc" "src/hashing/CMakeFiles/vp_hashing.dir/oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/vp_features.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/vp_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/vp_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
