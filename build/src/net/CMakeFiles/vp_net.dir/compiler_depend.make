# Empty compiler generated dependencies file for vp_net.
# This may be replaced when dependencies are built.
