file(REMOVE_RECURSE
  "CMakeFiles/vp_net.dir/link.cpp.o"
  "CMakeFiles/vp_net.dir/link.cpp.o.d"
  "CMakeFiles/vp_net.dir/tcp.cpp.o"
  "CMakeFiles/vp_net.dir/tcp.cpp.o.d"
  "CMakeFiles/vp_net.dir/wire.cpp.o"
  "CMakeFiles/vp_net.dir/wire.cpp.o.d"
  "libvp_net.a"
  "libvp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
