// Edge-case and failure-injection tests across modules: empty inputs,
// boundary sizes, pathological configurations, and protocol corner cases
// not covered by the per-module suites.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/session.hpp"
#include "features/sift.hpp"
#include "geometry/clustering.hpp"
#include "geometry/optimize.hpp"
#include "hashing/oracle.hpp"
#include "imaging/codec.hpp"
#include "imaging/filters.hpp"
#include "net/wire.hpp"
#include "scene/texture.hpp"
#include "util/stats.hpp"

namespace vp {
namespace {

TEST(EdgeSift, TinyImage) {
  // Smaller than one octave's working area: no crash, no keypoints.
  const ImageF img(24, 24, 1, 100.0f);
  EXPECT_TRUE(sift_detect(img).empty());
}

TEST(EdgeSift, SingleIntervalConfig) {
  Rng rng(1);
  const ImageF img = painting_texture(120, 90, rng);
  SiftConfig cfg;
  cfg.intervals = 1;
  EXPECT_NO_THROW(sift_detect(img, cfg));
}

TEST(EdgeSift, RejectsBadConfig) {
  const ImageF img(64, 64, 1, 100.0f);
  SiftConfig cfg;
  cfg.intervals = 0;
  EXPECT_THROW(sift_detect(img, cfg), InvalidArgument);
  EXPECT_THROW(sift_detect(ImageF{}, SiftConfig{}), InvalidArgument);
}

TEST(EdgeSift, ExtremeContrastThresholdFindsNothing) {
  Rng rng(2);
  const ImageF img = painting_texture(120, 90, rng);
  SiftConfig cfg;
  cfg.contrast_threshold = 10.0;  // impossible bar
  EXPECT_TRUE(sift_detect(img, cfg).empty());
}

TEST(EdgeClustering, SinglePoint) {
  const std::vector<Vec3> one{{1, 2, 3}};
  const auto result = cluster_points(one, {.radius = 1.0, .min_points = 1});
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.clusters[0].size(), 1u);
}

TEST(EdgeClustering, EmptyInput) {
  const std::vector<Vec3> none;
  const auto result = cluster_points(none, {});
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_TRUE(result.labels.empty());
  EXPECT_TRUE(largest_cluster(none, {}).empty());
}

TEST(EdgeClustering, AllCoincidentPoints) {
  const std::vector<Vec3> same(50, Vec3{1, 1, 1});
  const auto big = largest_cluster(same, {.radius = 0.5, .min_points = 2});
  EXPECT_EQ(big.size(), 50u);
}

TEST(EdgeClustering, RejectsNonPositiveRadius) {
  const std::vector<Vec3> pts{{0, 0, 0}};
  EXPECT_THROW(cluster_points(pts, {.radius = 0.0, .min_points = 1}),
               InvalidArgument);
}

TEST(EdgeDe, OneDimensionalDegenerateBox) {
  // lo == hi: the only feasible point is returned.
  Rng rng(3);
  const double lo[2] = {2.0, -1.0};
  const double hi[2] = {2.0, -1.0};
  const auto result = differential_evolution(
      [](std::span<const double> v) { return v[0] * v[0] + v[1]; }, lo, hi,
      {}, rng);
  EXPECT_DOUBLE_EQ(result.best[0], 2.0);
  EXPECT_DOUBLE_EQ(result.best[1], -1.0);
}

TEST(EdgeDe, RejectsBadBounds) {
  Rng rng(4);
  const double lo[1] = {1.0};
  const double hi[1] = {0.0};
  EXPECT_THROW(differential_evolution(
                   [](std::span<const double>) { return 0.0; }, lo, hi, {},
                   rng),
               InvalidArgument);
  EXPECT_THROW(
      differential_evolution([](std::span<const double>) { return 0.0; }, {},
                             {}, {}, rng),
      InvalidArgument);
}

TEST(EdgeOracle, ZeroCapacityRejected) {
  OracleConfig cfg;
  cfg.capacity = 0;
  EXPECT_THROW(UniquenessOracle{cfg}, InvalidArgument);
}

TEST(EdgeOracle, SingleTableSingleHash) {
  OracleConfig cfg;
  cfg.capacity = 1'000;
  cfg.lsh.tables = 1;
  cfg.lsh.projections = 1;
  cfg.hashes = 1;
  UniquenessOracle oracle(cfg);
  Descriptor d{};
  d[0] = 50;
  oracle.insert(d);
  EXPECT_GE(oracle.count(d), 1u);
}

TEST(EdgeOracle, EmptyOracleSerializeRoundtrip) {
  OracleConfig cfg;
  cfg.capacity = 1'000;
  UniquenessOracle oracle(cfg);
  const auto back = UniquenessOracle::deserialize(oracle.serialize());
  EXPECT_EQ(back.insertions(), 0u);
}

TEST(EdgeWire, EmptyQueryRoundtrip) {
  FingerprintQuery q;  // no features at all
  const auto back = FingerprintQuery::decode(q.encode());
  EXPECT_TRUE(back.features.empty());
}

TEST(EdgeWire, EmptyFramePayload) {
  FrameUpload f;
  const auto back = FrameUpload::decode(f.encode());
  EXPECT_TRUE(back.payload.empty());
}

TEST(EdgeWire, OracleDiffAgainstEmptyOld) {
  const Bytes new_blob{9, 8, 7};
  const OracleDiff d = OracleDiff::make({}, new_blob, 0, 1);
  EXPECT_EQ(d.apply({}), new_blob);
}

TEST(EdgeWire, OracleDiffShrinkingBlob) {
  const Bytes old_blob{1, 2, 3, 4, 5, 6};
  const Bytes new_blob{1, 2};
  const OracleDiff d = OracleDiff::make(old_blob, new_blob, 1, 2);
  EXPECT_EQ(d.apply(old_blob), new_blob);
}

TEST(EdgeCodec, OneByteImage) {
  ImageU8 img(1, 1, 1, 137);
  EXPECT_EQ(png_decode(png_encode(img)), img);
  EXPECT_NO_THROW(jpeg_decode(jpeg_encode(img, 90)));
}

TEST(EdgeCodec, EncodeRejectsEmptyImage) {
  EXPECT_THROW(png_encode(ImageU8{}), InvalidArgument);
  EXPECT_THROW(jpeg_encode(ImageU8{}, 80), InvalidArgument);
}

TEST(EdgeFilters, BlurMetricOnConstantImage) {
  EXPECT_DOUBLE_EQ(variance_of_laplacian(ImageF(32, 32, 1, 77.0f)), 0.0);
  EXPECT_DOUBLE_EQ(variance_of_laplacian(ImageF(2, 2, 1, 1.0f)), 0.0);
}

TEST(EdgeClient, TopKLargerThanFeatureSet) {
  ClientConfig cfg;
  cfg.policy = SelectionPolicy::kRandom;
  VisualPrintClient client(cfg);
  std::vector<Feature> three(3);
  EXPECT_EQ(client.select_features(three, 100).size(), 3u);
}

TEST(EdgeClient, RejectsZeroTopK) {
  ClientConfig cfg;
  cfg.top_k = 0;
  EXPECT_THROW(VisualPrintClient{cfg}, InvalidArgument);
}

TEST(EdgeStats, HistogramRejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(EdgeStats, CdfOfSingleValue) {
  const std::vector<double> one{5.0};
  EmpiricalCdf cdf(one);
  EXPECT_DOUBLE_EQ(cdf.at(4.9), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 5.0);
}

TEST(EdgeSession, CumulativeUploadEmpty) {
  SessionStats stats;
  EXPECT_TRUE(stats.cumulative_upload().empty());
}

}  // namespace
}  // namespace vp
