// Parameterized sweeps over configuration spaces: SIFT detector settings,
// camera geometries, link rates, ICP modes, and serialization pairs —
// invariants that must hold at every point of each grid.
#include <gtest/gtest.h>

#include "features/sift.hpp"
#include "geometry/camera.hpp"
#include "geometry/icp.hpp"
#include "net/link.hpp"
#include "net/wire.hpp"
#include "scene/texture.hpp"
#include "slam/wardrive.hpp"
#include "scene/environments.hpp"
#include "util/rng.hpp"

namespace vp {
namespace {

// ---------------------------------------------------------------------------
class SiftIntervalTest : public ::testing::TestWithParam<int> {};

TEST_P(SiftIntervalTest, DetectionWorksAndDescriptorsNormalized) {
  Rng rng(17);
  const ImageF img = painting_texture(180, 140, rng);
  SiftConfig cfg;
  cfg.intervals = GetParam();
  const auto features = sift_detect(img, cfg);
  EXPECT_GT(features.size(), 5u) << "intervals=" << cfg.intervals;
  for (const auto& f : features) {
    std::uint32_t norm2 = 0;
    for (auto v : f.descriptor) norm2 += v * v;
    // Lowe normalization: quantized norm lands in a known band.
    EXPECT_GT(norm2, 80'000u);
    EXPECT_LT(norm2, 450'000u);
    EXPECT_GE(f.keypoint.orientation, -3.1416f);
    EXPECT_LE(f.keypoint.orientation, 3.1416f);
  }
}

INSTANTIATE_TEST_SUITE_P(Intervals, SiftIntervalTest,
                         ::testing::Values(2, 3, 4, 5));

// ---------------------------------------------------------------------------
struct CamParams {
  int width, height;
  double fov;
};

class CameraGridTest : public ::testing::TestWithParam<CamParams> {};

TEST_P(CameraGridTest, ProjectRayConsistency) {
  const auto p = GetParam();
  CameraIntrinsics cam{p.width, p.height, p.fov};
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    const Vec2 pixel{rng.uniform(0, p.width - 1), rng.uniform(0, p.height - 1)};
    const Vec3 ray = cam.pixel_ray(pixel);
    EXPECT_NEAR(ray.norm(), 1.0, 1e-12);
    // Walking along the ray and reprojecting returns the same pixel.
    const auto back = cam.project(ray * rng.uniform(0.5, 20.0));
    ASSERT_TRUE(back.has_value());
    EXPECT_NEAR(back->x, pixel.x, 1e-6);
    EXPECT_NEAR(back->y, pixel.y, 1e-6);
  }
  // Vertical FoV consistent with aspect ratio.
  EXPECT_LT(cam.fov_v(), cam.fov_h);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CameraGridTest,
    ::testing::Values(CamParams{640, 480, 1.15}, CamParams{1920, 1080, 1.2},
                      CamParams{320, 240, 0.8}, CamParams{920, 540, 1.5}));

// ---------------------------------------------------------------------------
class LinkRateTest : public ::testing::TestWithParam<double> {};

TEST_P(LinkRateTest, FifoInvariants) {
  const double mbps = GetParam();
  SimulatedLink link({.bandwidth_mbps = mbps, .rtt_ms = 20, .jitter_ms = 0});
  Rng rng(29);
  double prev_start = 0;
  for (int i = 0; i < 40; ++i) {
    const double submit = i * 0.05;
    const auto rec = link.submit(submit, 1000 + rng.uniform_u64(50'000));
    // FIFO: starts never regress; transfers never start before submission.
    EXPECT_GE(rec.start_time, prev_start);
    EXPECT_GE(rec.start_time, rec.submit_time);
    EXPECT_GT(rec.complete_time, rec.start_time);
    prev_start = rec.start_time;
  }
  // Conservation: everything delivered eventually.
  std::size_t total = 0;
  for (const auto& r : link.history()) total += r.bytes;
  EXPECT_EQ(link.bytes_delivered_by(1e9), total);
}

INSTANTIATE_TEST_SUITE_P(Rates, LinkRateTest,
                         ::testing::Values(0.5, 2.0, 8.0, 32.0, 1000.0));

// ---------------------------------------------------------------------------
class IcpModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(IcpModeTest, RecoversYawPlusTranslation) {
  IcpConfig cfg;
  cfg.planar = GetParam();
  Rng rng(31);
  std::vector<Vec3> target;
  for (int i = 0; i < 600; ++i) {
    if (i % 3 == 0) {
      target.push_back({rng.uniform(0, 8), rng.uniform(0, 8), 0});  // floor
    } else if (i % 3 == 1) {
      target.push_back({rng.uniform(0, 8), 0, rng.uniform(0, 3)});  // wall A
    } else {
      target.push_back({0, rng.uniform(0, 8), rng.uniform(0, 3)});  // wall B
    }
  }
  // Yaw + translation misalignment: representable by BOTH modes.
  const Pose truth = Pose::from_euler({0.25, -0.15, 0.1}, 0.04, 0, 0);
  std::vector<Vec3> source;
  const Pose inv = truth.inverse();
  for (const auto& p : target) source.push_back(inv.to_world(p));

  const IcpResult result = icp_align(source, target, cfg);
  EXPECT_TRUE(result.converged) << "planar=" << cfg.planar;
  double err = 0;
  for (std::size_t i = 0; i < source.size(); ++i) {
    err += result.transform.to_world(source[i]).distance(target[i]);
  }
  EXPECT_LT(err / static_cast<double>(source.size()), 0.08)
      << "planar=" << cfg.planar;
}

INSTANTIATE_TEST_SUITE_P(Modes, IcpModeTest, ::testing::Values(true, false));

TEST(IcpPlanar, NeverTiltsThePose) {
  // Planar mode's correction must leave roll/pitch untouched even on
  // tilt-ambiguous (single-plane) clouds.
  Rng rng(37);
  std::vector<Vec3> target;
  for (int i = 0; i < 300; ++i) {
    target.push_back({rng.uniform(0, 10), rng.uniform(0, 10), 0});
  }
  std::vector<Vec3> source;
  for (const auto& p : target) source.push_back(p + Vec3{0.3, -0.2, 0});
  IcpConfig cfg;
  cfg.planar = true;
  const IcpResult result = icp_align(source, target, cfg);
  double yaw, pitch, roll;
  euler_zyx(result.transform.rotation, yaw, pitch, roll);
  EXPECT_NEAR(pitch, 0.0, 1e-9);
  EXPECT_NEAR(roll, 0.0, 1e-9);
}

// ---------------------------------------------------------------------------
class DiffPairTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DiffPairTest, OracleDiffReconstructsAnyPair) {
  const auto [old_size, new_size] = GetParam();
  Rng rng(41 + static_cast<std::uint64_t>(old_size * 31 + new_size));
  Bytes old_blob(static_cast<std::size_t>(old_size));
  Bytes new_blob(static_cast<std::size_t>(new_size));
  for (auto& b : old_blob) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
  // New blob: mostly equal to old where they overlap (realistic refresh).
  for (std::size_t i = 0; i < new_blob.size(); ++i) {
    new_blob[i] = i < old_blob.size() && !rng.chance(0.05)
                      ? old_blob[i]
                      : static_cast<std::uint8_t>(rng.uniform_u64(256));
  }
  const OracleDiff diff = OracleDiff::make(old_blob, new_blob, 1, 2);
  EXPECT_EQ(diff.apply(old_blob), new_blob);
  // Encode/decode stability on top.
  const OracleDiff back = OracleDiff::decode(diff.encode());
  EXPECT_EQ(back.apply(old_blob), new_blob);
}

INSTANTIATE_TEST_SUITE_P(
    SizePairs, DiffPairTest,
    ::testing::Values(std::pair{0, 100}, std::pair{100, 0},
                      std::pair{100, 100}, std::pair{100, 500},
                      std::pair{500, 100}, std::pair{4096, 4099}));

// ---------------------------------------------------------------------------
TEST(WardriveSweep, ForwardViewsPresent) {
  // With views_per_stop >= 3, every third view must look along the
  // corridor (the ICP anchor views).
  Rng rng(43);
  GalleryConfig gc;
  gc.num_scenes = 4;
  gc.hall_length = 16;
  gc.hall_width = 6;
  const World world = build_gallery(gc, rng);
  WardriveConfig cfg;
  cfg.intrinsics = {100, 75, 1.15192};
  cfg.stop_spacing = 5.0;
  cfg.lane_spacing = 5.0;
  cfg.views_per_stop = 3;
  cfg.render.noise_stddev = 0;
  const auto snaps = wardrive(world, cfg, rng);
  int along = 0;
  for (const auto& s : snaps) {
    // Camera forward axis in world coordinates = third rotation column.
    const Vec3 fwd{s.true_pose.rotation.m[0][2], s.true_pose.rotation.m[1][2],
                   s.true_pose.rotation.m[2][2]};
    if (std::abs(fwd.x) > 0.8) ++along;  // looking along the hall's x axis
  }
  EXPECT_GE(along, static_cast<int>(snaps.size()) / 4);
}

}  // namespace
}  // namespace vp
