#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "imaging/codec.hpp"
#include "imaging/filters.hpp"
#include "imaging/image.hpp"
#include "imaging/pnm.hpp"
#include "imaging/video_model.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

ImageF ramp_image(int w, int h) {
  ImageF img(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) img(x, y) = static_cast<float>(x);
  return img;
}

ImageU8 noise_u8(int w, int h, int channels, std::uint64_t seed) {
  Rng rng(seed);
  ImageU8 img(w, h, channels);
  for (auto& p : img.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_u64(256));
  }
  return img;
}

TEST(Image, ConstructionAndAccess) {
  ImageU8 img(4, 3, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.channels(), 3);
  EXPECT_EQ(img.pixel_count(), 12u);
  EXPECT_EQ(img.byte_size(), 36u);
  EXPECT_EQ(img.at(2, 1, 2), 7);
  img.at(2, 1, 2) = 99;
  EXPECT_EQ(img(2, 1, 2), 99);
}

TEST(Image, ClampedAccess) {
  ImageF img(2, 2);
  img(0, 0) = 1;
  img(1, 1) = 4;
  EXPECT_EQ(img.at_clamped(-5, -5), 1);
  EXPECT_EQ(img.at_clamped(10, 10), 4);
}

TEST(Image, RejectsBadDimensions) {
  EXPECT_THROW(ImageU8(-1, 4), InvalidArgument);
  EXPECT_THROW(ImageU8(4, 4, 9), InvalidArgument);
}

TEST(Image, GrayConversionWeights) {
  ImageU8 rgb(1, 1, 3);
  rgb(0, 0, 0) = 255;  // pure red
  const ImageF g = to_gray(rgb);
  EXPECT_NEAR(g(0, 0), 0.299f * 255, 0.5);
}

TEST(Image, U8RoundtripClamps) {
  ImageF f(2, 1);
  f(0, 0) = -10.0f;
  f(1, 0) = 300.0f;
  const ImageU8 u = to_u8(f);
  EXPECT_EQ(u(0, 0), 0);
  EXPECT_EQ(u(1, 0), 255);
}

TEST(Filters, BlurPreservesMean) {
  Rng rng(5);
  ImageF img(32, 32);
  for (auto& p : img.pixels()) p = static_cast<float>(rng.uniform(0, 255));
  double mean_before = 0;
  for (auto p : img.pixels()) mean_before += p;
  const ImageF out = gaussian_blur(img, 2.0);
  double mean_after = 0;
  for (auto p : out.pixels()) mean_after += p;
  EXPECT_NEAR(mean_after / mean_before, 1.0, 0.02);
}

TEST(Filters, BlurReducesVariance) {
  Rng rng(6);
  ImageF img(48, 48);
  for (auto& p : img.pixels()) p = static_cast<float>(rng.uniform(0, 255));
  const double v0 = variance_of_laplacian(img);
  const double v1 = variance_of_laplacian(gaussian_blur(img, 1.5));
  EXPECT_LT(v1, v0 * 0.5);
}

TEST(Filters, ZeroSigmaIsIdentity) {
  const ImageF img = ramp_image(8, 8);
  EXPECT_EQ(gaussian_blur(img, 0.0), img);
}

TEST(Filters, Downsample2xHalvesSize) {
  const ImageF img = ramp_image(10, 8);
  const ImageF half = downsample_2x(img);
  EXPECT_EQ(half.width(), 5);
  EXPECT_EQ(half.height(), 4);
  EXPECT_EQ(half(2, 1), img(4, 2));
}

// Odd sizes: the trailing row/column is dropped and every output pixel
// samples exactly src(2x, 2y) — the last outputs must not clamp back onto
// the (kept) even grid's neighbor.
TEST(Filters, Downsample2xOddSizesSampleEvenGrid) {
  ImageF img(9, 7);
  for (int y = 0; y < 7; ++y)
    for (int x = 0; x < 9; ++x) img(x, y) = static_cast<float>(100 * y + x);
  const ImageF half = downsample_2x(img);
  ASSERT_EQ(half.width(), 4);
  ASSERT_EQ(half.height(), 3);
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 4; ++x) EXPECT_EQ(half(x, y), img(2 * x, 2 * y));
}

TEST(Filters, BlurWithPoolMatchesSequentialExactly) {
  Rng rng(9);
  ImageF img(53, 41);  // odd sizes exercise the border/interior split
  for (auto& p : img.pixels()) p = static_cast<float>(rng.uniform(0, 255));
  const ImageF seq = gaussian_blur(img, 1.7);
  ThreadPool pool(4);
  const ImageF par = gaussian_blur(img, 1.7, &pool);
  ASSERT_EQ(par.width(), seq.width());
  ASSERT_EQ(par.height(), seq.height());
  for (std::size_t i = 0; i < seq.pixels().size(); ++i) {
    EXPECT_EQ(par.pixels()[i], seq.pixels()[i]) << "pixel " << i;
  }
}

TEST(Filters, GaussianKernelIsCachedAcrossCalls) {
  const ImageF img = ramp_image(16, 16);
  const std::size_t before = gaussian_kernel_cache_size();
  // A sigma no other test uses, blurred twice: one new cache entry total.
  (void)gaussian_blur(img, 3.1415);
  const std::size_t after_first = gaussian_kernel_cache_size();
  (void)gaussian_blur(img, 3.1415);
  EXPECT_EQ(gaussian_kernel_cache_size(), after_first);
  EXPECT_GE(after_first, before + 1);
}

TEST(Filters, ResizeIdentity) {
  const ImageF img = ramp_image(12, 9);
  const ImageF same = resize_bilinear(img, 12, 9);
  for (int y = 0; y < 9; ++y)
    for (int x = 0; x < 12; ++x) EXPECT_NEAR(same(x, y), img(x, y), 1e-4);
}

TEST(Filters, ResizePreservesRampValues) {
  const ImageF img = ramp_image(16, 4);
  const ImageF big = resize_bilinear(img, 32, 8);
  // A horizontal ramp should stay a ramp (slope halves in pixel units).
  EXPECT_NEAR(big(16, 4), img(8, 2), 0.51);
}

TEST(Filters, GradientOfRamp) {
  const ImageF img = ramp_image(8, 8);
  ImageF dx, dy;
  gradients(img, dx, dy);
  EXPECT_NEAR(dx(4, 4), 1.0, 1e-5);
  EXPECT_NEAR(dy(4, 4), 0.0, 1e-5);
}

TEST(Filters, MotionBlurSmearsAlongDirection) {
  ImageF img(21, 21, 1, 0.0f);
  img(10, 10) = 255.0f;
  const ImageF out = motion_blur(img, 1, 0, 7);
  EXPECT_GT(out(13, 10), 0.0f);   // smeared horizontally
  EXPECT_EQ(out(10, 13), 0.0f);   // not vertically
}

TEST(Filters, NoiseIsBounded) {
  Rng rng(8);
  ImageF img(16, 16, 1, 128.0f);
  add_gaussian_noise(img, 30.0, rng);
  for (auto p : img.pixels()) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 255.0f);
  }
}

TEST(Codec, PngIsLossless) {
  const ImageU8 img = noise_u8(37, 23, 3, 1);
  const Bytes png = png_encode(img);
  const ImageU8 back = png_decode(png);
  EXPECT_EQ(back, img);
}

TEST(Codec, PngGrayscale) {
  const ImageU8 img = noise_u8(16, 16, 1, 2);
  EXPECT_EQ(png_decode(png_encode(img)), img);
}

TEST(Codec, JpegRoundtripApproximate) {
  // Smooth image: JPEG at high quality should be close.
  ImageU8 img(32, 32, 1);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x)
      img(x, y) = static_cast<std::uint8_t>(4 * x + 2 * y);
  const ImageU8 back = jpeg_decode(jpeg_encode(img, 95));
  ASSERT_EQ(back.width(), 32);
  double err = 0;
  for (std::size_t i = 0; i < img.pixels().size(); ++i) {
    err += std::abs(static_cast<int>(img.pixels()[i]) -
                    static_cast<int>(back.pixels()[i]));
  }
  EXPECT_LT(err / img.pixels().size(), 4.0);
}

TEST(Codec, JpegQualityOrdersSize) {
  const ImageU8 img = noise_u8(64, 64, 1, 3);
  EXPECT_LT(jpeg_encode(img, 30).size(), jpeg_encode(img, 90).size());
}

TEST(Codec, JpegRejectsGarbage) {
  const Bytes garbage{1, 2, 3, 4, 5};
  EXPECT_THROW(jpeg_decode(garbage), DecodeError);
}

TEST(Codec, PngRejectsGarbage) {
  const Bytes garbage{9, 9, 9, 9, 9, 9, 9, 9};
  EXPECT_THROW(png_decode(garbage), DecodeError);
}

TEST(Codec, ZlibRoundtrip) {
  Rng rng(4);
  Bytes data(10000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(4));
  const Bytes z = zlib_compress(data, 9);
  EXPECT_LT(z.size(), data.size());
  EXPECT_EQ(zlib_decompress(z), data);
}

TEST(Codec, ZlibDetectsCorruption) {
  Bytes data(1000, 7);
  Bytes z = zlib_compress(data, 6);
  z[z.size() / 2] ^= 0xFF;
  EXPECT_THROW(zlib_decompress(z), Error);
}

TEST(Codec, ZlibEmptyInput) {
  const Bytes empty;
  EXPECT_EQ(zlib_decompress(zlib_compress(empty)), empty);
}

TEST(Pnm, RoundtripGrayAndRgb) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path();
  for (int ch : {1, 3}) {
    const ImageU8 img = noise_u8(20, 10, ch, 5 + ch);
    const std::string path = (dir / ("vp_test_" + std::to_string(ch) + ".pnm")).string();
    write_pnm(path, img);
    EXPECT_EQ(read_pnm(path), img);
    fs::remove(path);
  }
}

TEST(Pnm, MissingFileThrows) {
  EXPECT_THROW(read_pnm("/nonexistent/vp.pgm"), IoError);
}

TEST(VideoModel, IntraFrameCostsLikeJpeg) {
  H264SizeModel model({.gop_length = 30, .intra_jpeg_quality = 60});
  const ImageU8 frame = noise_u8(64, 64, 1, 6);
  const std::size_t intra = model.frame_bytes(frame);
  const std::size_t jpeg = jpeg_encode(frame, 60).size();
  EXPECT_EQ(intra, jpeg);
}

TEST(VideoModel, StaticSceneInterFramesAreTiny) {
  H264SizeModel model;
  const ImageU8 frame = noise_u8(64, 64, 1, 7);
  const std::size_t intra = model.frame_bytes(frame);
  const std::size_t inter = model.frame_bytes(frame);  // identical frame
  EXPECT_LT(inter, intra / 5);
}

TEST(VideoModel, MotionIncreasesInterSize) {
  H264SizeModel model;
  const ImageU8 a = noise_u8(64, 64, 1, 8);
  const ImageU8 b = noise_u8(64, 64, 1, 9);  // fully different
  model.frame_bytes(a);
  const std::size_t inter_static = model.frame_bytes(a);
  model.reset();
  model.frame_bytes(a);
  const std::size_t inter_moving = model.frame_bytes(b);
  EXPECT_GT(inter_moving, inter_static * 3);
}

TEST(VideoModel, MotionEnergyBounds) {
  const ImageU8 a(8, 8, 1, 0);
  ImageU8 b(8, 8, 1, 255);
  EXPECT_DOUBLE_EQ(H264SizeModel::motion_energy(a, a), 0.0);
  EXPECT_DOUBLE_EQ(H264SizeModel::motion_energy(a, b), 1.0);
}

}  // namespace
}  // namespace vp
