#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "hashing/bloom.hpp"
#include "hashing/lsh.hpp"
#include "hashing/murmur3.hpp"
#include "hashing/oracle.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

std::span<const std::uint8_t> bytes_of(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s), std::strlen(s)};
}

Descriptor random_descriptor(Rng& rng) {
  Descriptor d;
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.uniform_u64(80));
  return d;
}

Descriptor perturb(const Descriptor& d, Rng& rng, int magnitude) {
  Descriptor out = d;
  for (auto& v : out) {
    const int nv = static_cast<int>(v) +
                   static_cast<int>(rng.uniform_int(-magnitude, magnitude));
    v = static_cast<std::uint8_t>(std::clamp(nv, 0, 255));
  }
  return out;
}

// Reference vectors for MurmurHash3 x86_32 (Appleby's and Wikipedia's
// published test values).
TEST(Murmur3, KnownVectors32) {
  EXPECT_EQ(murmur3_x86_32({}, 0), 0u);
  EXPECT_EQ(murmur3_x86_32({}, 1), 0x514E28B7u);
  EXPECT_EQ(murmur3_x86_32({}, 0xFFFFFFFFu), 0x81F16F39u);
  EXPECT_EQ(murmur3_x86_32(bytes_of("test"), 0), 0xba6bd213u);
  EXPECT_EQ(murmur3_x86_32(bytes_of("test"), 0x9747b28cu), 0x704b81dcu);
  EXPECT_EQ(murmur3_x86_32(bytes_of("Hello, world!"), 0), 0xc0363e43u);
  EXPECT_EQ(murmur3_x86_32(
                bytes_of("The quick brown fox jumps over the lazy dog"),
                0x9747b28cu),
            0x2FA826CDu);
}

TEST(Murmur3, EmptyInput128) {
  const auto [h1, h2] = murmur3_x64_128({}, 0);
  EXPECT_EQ(h1, 0u);
  EXPECT_EQ(h2, 0u);
}

TEST(Murmur3, DeterministicAndSeedSensitive128) {
  const auto a = murmur3_x64_128(bytes_of("visualprint"), 1);
  const auto b = murmur3_x64_128(bytes_of("visualprint"), 1);
  const auto c = murmur3_x64_128(bytes_of("visualprint"), 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Murmur3, AvalancheOnSingleBitFlip) {
  Bytes data(64, 0x55);
  const auto a = murmur3_x64_128(data, 0);
  data[10] ^= 1;
  const auto b = murmur3_x64_128(data, 0);
  const std::uint64_t diff = a.first ^ b.first;
  int bits = 0;
  for (int i = 0; i < 64; ++i) bits += (diff >> i) & 1;
  EXPECT_GT(bits, 16);  // roughly half the bits should flip
}

TEST(Murmur3, AllTailLengths) {
  // Exercise every switch-case tail length in both variants.
  Bytes data(32);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  std::set<std::uint32_t> seen32;
  std::set<std::uint64_t> seen128;
  for (std::size_t len = 0; len <= 17; ++len) {
    seen32.insert(murmur3_x86_32(std::span(data.data(), len), 7));
    seen128.insert(murmur3_x64_128(std::span(data.data(), len), 7).first);
  }
  EXPECT_EQ(seen32.size(), 18u);   // all distinct
  EXPECT_EQ(seen128.size(), 18u);
}

TEST(BloomIndices, ProducesKDistinctishIndices) {
  std::vector<std::size_t> idx;
  bloom_indices(bytes_of("bucket"), 3, 8, 1'000'003, std::back_inserter(idx));
  EXPECT_EQ(idx.size(), 8u);
  for (auto i : idx) EXPECT_LT(i, 1'000'003u);
}

TEST(BloomFilter, SetTestBasics) {
  BloomFilter f(1024);
  EXPECT_FALSE(f.test(77));
  f.set(77);
  EXPECT_TRUE(f.test(77));
  EXPECT_EQ(f.set_bit_count(), 1u);
  f.set(77);
  EXPECT_EQ(f.set_bit_count(), 1u);  // idempotent
}

TEST(BloomFilter, IndexWrapsModuloBits) {
  BloomFilter f(64);
  f.set(64);  // wraps to 0
  EXPECT_TRUE(f.test(0));
}

TEST(BloomFilter, OptimalSizing) {
  // 1e6 elements at 1%: canonical answer is ~9.59 bits per element.
  const std::size_t bits = BloomFilter::optimal_bits(1'000'000, 0.01);
  EXPECT_NEAR(static_cast<double>(bits) / 1e6, 9.585, 0.01);
  EXPECT_EQ(BloomFilter::optimal_hashes(bits, 1'000'000), 7u);
}

TEST(BloomFilter, MeasuredFpRateNearTarget) {
  const std::size_t n = 5000;
  const double target = 0.02;
  const std::size_t bits = BloomFilter::optimal_bits(n, target);
  const std::size_t k = BloomFilter::optimal_hashes(bits, n);
  BloomFilter f(bits);
  Rng rng(1);
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < n; ++i) {
    ByteWriter w;
    w.u64(i);
    idx.clear();
    bloom_indices(w.bytes(), 9, k, f.bit_count(), std::back_inserter(idx));
    for (auto j : idx) f.set(j);
  }
  std::size_t fps = 0;
  const std::size_t probes = 20'000;
  for (std::size_t i = 0; i < probes; ++i) {
    ByteWriter w;
    w.u64(1'000'000 + i);  // never inserted
    idx.clear();
    bloom_indices(w.bytes(), 9, k, f.bit_count(), std::back_inserter(idx));
    bool hit = true;
    for (auto j : idx) hit = hit && f.test(j);
    fps += hit;
  }
  const double rate = static_cast<double>(fps) / probes;
  EXPECT_LT(rate, target * 2.5);
}

TEST(BloomFilter, SerializeRoundtrip) {
  BloomFilter f(256);
  f.set(3);
  f.set(200);
  const Bytes b = f.serialize();
  ByteReader r(b);
  const BloomFilter back = BloomFilter::deserialize(r);
  EXPECT_EQ(back, f);
}

TEST(CountingBloom, IncrementDecrement) {
  CountingBloomFilter f(128, 10);
  EXPECT_EQ(f.count(5), 0u);
  EXPECT_EQ(f.increment(5), 1u);
  EXPECT_EQ(f.increment(5), 2u);
  EXPECT_EQ(f.count(5), 2u);
  EXPECT_EQ(f.decrement(5), 1u);
  EXPECT_EQ(f.decrement(5), 0u);
  EXPECT_EQ(f.decrement(5), 0u);  // floor at zero
}

TEST(CountingBloom, SaturatesAtMax) {
  CountingBloomFilter f(16, 4);  // max 15
  for (int i = 0; i < 100; ++i) f.increment(3);
  EXPECT_EQ(f.count(3), 15u);
  EXPECT_EQ(f.saturation(), 15u);
}

TEST(CountingBloom, TenBitSaturation) {
  CountingBloomFilter f(8, 10);
  for (int i = 0; i < 2000; ++i) f.increment(0);
  EXPECT_EQ(f.count(0), 1023u);  // the paper's "saturation of 1024" counter
}

TEST(CountingBloom, WordBoundaryCounters) {
  // 10-bit counters straddle 64-bit word boundaries; verify neighbors
  // don't corrupt each other across the straddle.
  CountingBloomFilter f(64, 10);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t n = 0; n < i % 7; ++n) f.increment(i);
  }
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(f.count(i), i % 7) << "counter " << i;
  }
}

TEST(CountingBloom, SerializeRoundtrip) {
  CountingBloomFilter f(100, 10);
  f.increment(1);
  f.increment(1);
  f.increment(99);
  const Bytes b = f.serialize();
  ByteReader r(b);
  EXPECT_EQ(CountingBloomFilter::deserialize(r), f);
}

TEST(CountingBloom, DeserializeRejectsGarbage) {
  ByteWriter w;
  w.u64(0);  // zero counters: invalid
  w.u32(10);
  const Bytes b = w.take();
  ByteReader r(b);
  EXPECT_THROW(CountingBloomFilter::deserialize(r), DecodeError);
}

TEST(E2Lsh, SameDescriptorSameBuckets) {
  E2Lsh lsh(10, 7, 500.0, 42);
  Rng rng(1);
  const Descriptor d = random_descriptor(rng);
  const auto a = lsh.all_buckets(d);
  const auto b = lsh.all_buckets(d);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(a[0].size(), 7u);
}

TEST(E2Lsh, SeedChangesProjections) {
  E2Lsh a(4, 7, 500.0, 1), b(4, 7, 500.0, 2);
  Rng rng(2);
  const Descriptor d = random_descriptor(rng);
  EXPECT_NE(a.bucket(d, 0), b.bucket(d, 0));
}

TEST(E2Lsh, LocalitySensitivity) {
  // Nearby descriptors collide in most tables; far ones rarely do.
  E2Lsh lsh(10, 7, 500.0, 7);
  Rng rng(3);
  int near_hits = 0, far_hits = 0, trials = 40;
  for (int i = 0; i < trials; ++i) {
    const Descriptor base = random_descriptor(rng);
    const Descriptor near_d = perturb(base, rng, 2);
    const Descriptor far_d = random_descriptor(rng);
    for (std::size_t t = 0; t < lsh.tables(); ++t) {
      near_hits += lsh.bucket(base, t) == lsh.bucket(near_d, t);
      far_hits += lsh.bucket(base, t) == lsh.bucket(far_d, t);
    }
  }
  const double near_rate = near_hits / (40.0 * 10);
  const double far_rate = far_hits / (40.0 * 10);
  EXPECT_GT(near_rate, 0.5);
  EXPECT_LT(far_rate, near_rate / 3);
}

TEST(E2Lsh, WidthControlsQuantization) {
  Rng rng(4);
  const Descriptor base = random_descriptor(rng);
  const Descriptor nearby = perturb(base, rng, 6);
  // Coarser width -> more collisions between neighbors.
  int fine_hits = 0, coarse_hits = 0;
  E2Lsh fine(16, 7, 100.0, 5);
  E2Lsh coarse(16, 7, 2000.0, 5);
  for (std::size_t t = 0; t < 16; ++t) {
    fine_hits += fine.bucket(base, t) == fine.bucket(nearby, t);
    coarse_hits += coarse.bucket(base, t) == coarse.bucket(nearby, t);
  }
  EXPECT_GE(coarse_hits, fine_hits);
}

OracleConfig small_oracle_config() {
  OracleConfig cfg;
  cfg.capacity = 20'000;  // keep filters small for tests
  return cfg;
}

TEST(Oracle, UnseenDescriptorScoresZero) {
  UniquenessOracle oracle(small_oracle_config());
  Rng rng(5);
  EXPECT_EQ(oracle.count(random_descriptor(rng)), 0u);
}

TEST(Oracle, RepeatedInsertIncreasesCount) {
  UniquenessOracle oracle(small_oracle_config());
  Rng rng(6);
  const Descriptor d = random_descriptor(rng);
  for (int i = 0; i < 5; ++i) oracle.insert(d);
  EXPECT_GE(oracle.count(d), 4u);
  EXPECT_LE(oracle.count(d), 6u);
  EXPECT_EQ(oracle.insertions(), 5u);
}

TEST(Oracle, NearbyDescriptorSharesCount) {
  UniquenessOracle oracle(small_oracle_config());
  Rng rng(7);
  const Descriptor d = random_descriptor(rng);
  for (int i = 0; i < 10; ++i) oracle.insert(d);
  const Descriptor nearby = perturb(d, rng, 1);
  EXPECT_GE(oracle.count(nearby), 5u);  // LSH locality + multiprobe
}

TEST(Oracle, RanksCommonAboveUnique) {
  // The core VisualPrint property: a repeated descriptor must score higher
  // (less unique) than one inserted once.
  UniquenessOracle oracle(small_oracle_config());
  Rng rng(8);
  const Descriptor common = random_descriptor(rng);
  const Descriptor unique = random_descriptor(rng);
  for (int i = 0; i < 50; ++i) oracle.insert(perturb(common, rng, 1));
  oracle.insert(unique);
  EXPECT_GT(oracle.count(common), oracle.count(unique) + 10);
}

TEST(Oracle, SaturationCapsCount) {
  OracleConfig cfg = small_oracle_config();
  cfg.counter_bits = 4;  // saturate at 15
  UniquenessOracle oracle(cfg);
  Rng rng(9);
  const Descriptor d = random_descriptor(rng);
  for (int i = 0; i < 200; ++i) oracle.insert(d);
  EXPECT_LE(oracle.count(d), 15u);
  EXPECT_GE(oracle.count(d), 14u);
}

TEST(Oracle, VerificationFilterCutsFalsePositives) {
  // Insert many random descriptors; probe with fresh randoms. With the
  // verification filter the nonzero-count rate should not exceed the
  // rate without it.
  Rng rng(10);
  OracleConfig with = small_oracle_config();
  with.counters_override = 20'000;  // deliberately undersized -> collisions
  OracleConfig without = with;
  without.verification = false;
  UniquenessOracle a(with), b(without);
  for (int i = 0; i < 3000; ++i) {
    const Descriptor d = random_descriptor(rng);
    a.insert(d);
    b.insert(d);
  }
  int fa = 0, fb = 0;
  Rng probe_rng(11);
  for (int i = 0; i < 300; ++i) {
    const Descriptor q = random_descriptor(probe_rng);
    fa += a.count(q) > 0;
    fb += b.count(q) > 0;
  }
  EXPECT_LE(fa, fb);
}

TEST(Oracle, MultiprobeRescuesBoundaryNeighbors) {
  Rng rng(12);
  OracleConfig with = small_oracle_config();
  OracleConfig without = with;
  without.multiprobe = false;
  UniquenessOracle a(with), b(without);
  // Insert one cluster of similar descriptors in both oracles.
  const Descriptor base = random_descriptor(rng);
  for (int i = 0; i < 20; ++i) {
    const Descriptor d = perturb(base, rng, 2);
    a.insert(d);
    b.insert(d);
  }
  // Probe with perturbed queries; multiprobe should find at least as many.
  int hits_with = 0, hits_without = 0;
  for (int i = 0; i < 50; ++i) {
    const Descriptor q = perturb(base, rng, 2);
    hits_with += a.count(q) > 0;
    hits_without += b.count(q) > 0;
  }
  EXPECT_GE(hits_with, hits_without);
}

// Directed multiprobe test: with one table and one projection, all-constant
// descriptors walk the quantization ladder monotonically, so we can find a
// pair whose buckets are exactly adjacent with the inserted bucket one step
// ABOVE the query's — reachable only by the +1 probe, never the -1 probe.
TEST(Oracle, MultiprobeFindsHitAtPlusOne) {
  OracleConfig cfg = small_oracle_config();
  cfg.lsh.tables = 1;
  cfg.lsh.projections = 1;
  cfg.lsh.width = 40.0;  // narrow enough that the ladder has many rungs
  OracleConfig no_probe = cfg;
  no_probe.multiprobe = false;
  UniquenessOracle probed(cfg), plain(no_probe);

  auto desc_of = [](int v) {
    Descriptor d;
    d.fill(static_cast<std::uint8_t>(v));
    return d;
  };
  const E2Lsh& lsh = probed.lsh();
  int insert_v = -1, query_v = -1;
  for (int v = 1; v < 256 && insert_v < 0; ++v) {
    const std::int32_t prev = lsh.bucket(desc_of(v - 1), 0)[0];
    const std::int32_t cur = lsh.bucket(desc_of(v), 0)[0];
    if (cur == prev + 1) {
      insert_v = v;
      query_v = v - 1;
    } else if (cur == prev - 1) {
      insert_v = v - 1;
      query_v = v;
    }
  }
  ASSERT_GE(insert_v, 0) << "no adjacent bucket pair on the ladder";
  const Descriptor ins = desc_of(insert_v);
  const Descriptor query = desc_of(query_v);
  ASSERT_EQ(lsh.bucket(ins, 0)[0], lsh.bucket(query, 0)[0] + 1);

  for (int i = 0; i < 5; ++i) {
    probed.insert(ins);
    plain.insert(ins);
  }
  EXPECT_EQ(plain.count(query), 0u);  // primary bucket misses
  EXPECT_GE(probed.count(query), 4u);  // the +1 probe rescues it
}

TEST(Oracle, CountBatchMatchesScalarCount) {
  UniquenessOracle oracle(small_oracle_config());
  Rng rng(15);
  std::vector<Descriptor> batch;
  for (int i = 0; i < 60; ++i) {
    const Descriptor d = random_descriptor(rng);
    // Mix of unseen, singleton, and repeated descriptors.
    for (int j = 0; j < i % 4; ++j) oracle.insert(d);
    batch.push_back(perturb(d, rng, 1));
  }
  std::vector<std::uint32_t> expected;
  for (const auto& d : batch) expected.push_back(oracle.count(d));

  EXPECT_EQ(oracle.count_batch(batch), expected);
  ThreadPool pool(4);
  EXPECT_EQ(oracle.count_batch(batch, &pool), expected);
  EXPECT_TRUE(oracle.count_batch({}, &pool).empty());
}

TEST(Oracle, SerializeRoundtripPreservesCounts) {
  UniquenessOracle oracle(small_oracle_config());
  Rng rng(13);
  std::vector<Descriptor> inserted;
  for (int i = 0; i < 40; ++i) {
    inserted.push_back(random_descriptor(rng));
    oracle.insert(inserted.back());
  }
  const Bytes blob = oracle.serialize();
  const UniquenessOracle back = UniquenessOracle::deserialize(blob);
  EXPECT_EQ(back.insertions(), oracle.insertions());
  for (const auto& d : inserted) {
    EXPECT_EQ(back.count(d), oracle.count(d));
  }
}

TEST(Oracle, DeserializeRejectsCorruptMagic) {
  UniquenessOracle oracle(small_oracle_config());
  Bytes blob = oracle.serialize();
  blob[0] ^= 0xFF;
  EXPECT_THROW(UniquenessOracle::deserialize(blob), DecodeError);
}

TEST(Oracle, AggregateModes) {
  Rng rng(14);
  for (auto agg : {OracleAggregate::kMin, OracleAggregate::kMedian,
                   OracleAggregate::kMean, OracleAggregate::kMax}) {
    OracleConfig cfg = small_oracle_config();
    cfg.aggregate = agg;
    UniquenessOracle oracle(cfg);
    const Descriptor d = random_descriptor(rng);
    for (int i = 0; i < 7; ++i) oracle.insert(d);
    // Exact re-query: every table agrees, so all aggregates see ~7.
    EXPECT_GE(oracle.count(d), 6u);
    EXPECT_LE(oracle.count(d), 8u);
  }
}

}  // namespace
}  // namespace vp
