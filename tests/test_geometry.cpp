#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geometry/angles.hpp"
#include "geometry/camera.hpp"
#include "geometry/clustering.hpp"
#include "geometry/eigen.hpp"
#include "geometry/icp.hpp"
#include "geometry/localize.hpp"
#include "geometry/optimize.hpp"
#include "geometry/pose.hpp"
#include "geometry/vec.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec3, BasicOps) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ((a + b).x, 5);
  EXPECT_DOUBLE_EQ((b - a).z, 3);
  EXPECT_DOUBLE_EQ(a.dot(b), 32);
  const Vec3 c = a.cross(b);
  EXPECT_DOUBLE_EQ(c.x, -3);
  EXPECT_DOUBLE_EQ(c.y, 6);
  EXPECT_DOUBLE_EQ(c.z, -3);
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm(), 5.0);
  EXPECT_NEAR((Vec3{10, 0, 0}).normalized().norm(), 1.0, 1e-12);
}

TEST(Mat3, IdentityAndMultiply) {
  const Mat3 i = Mat3::identity();
  const Vec3 v{1, 2, 3};
  const Vec3 r = i * v;
  EXPECT_DOUBLE_EQ(r.x, 1);
  EXPECT_DOUBLE_EQ(r.z, 3);
  const Mat3 ii = i * i;
  EXPECT_DOUBLE_EQ(ii.trace(), 3.0);
}

TEST(Rotation, EulerRoundtrip) {
  for (double yaw : {-2.0, -0.5, 0.0, 1.0, 2.5}) {
    for (double pitch : {-1.2, 0.0, 0.7}) {
      for (double roll : {-0.9, 0.0, 1.4}) {
        const Mat3 r = rotation_zyx(yaw, pitch, roll);
        double y2, p2, r2;
        euler_zyx(r, y2, p2, r2);
        EXPECT_NEAR(y2, yaw, 1e-9);
        EXPECT_NEAR(p2, pitch, 1e-9);
        EXPECT_NEAR(r2, roll, 1e-9);
      }
    }
  }
}

TEST(Rotation, OrthonormalColumns) {
  const Mat3 r = rotation_zyx(0.3, -0.6, 1.1);
  const Mat3 rrt = r * r.transposed();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(rrt.m[i][j], i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Pose, WorldBodyRoundtrip) {
  const Pose p = Pose::from_euler({1, 2, 3}, 0.5, -0.2, 0.1);
  const Vec3 w{4, -1, 2};
  EXPECT_NEAR(p.to_world(p.to_body(w)).distance(w), 0.0, 1e-12);
}

TEST(Pose, ComposeAndInverse) {
  const Pose a = Pose::from_euler({1, 0, 0}, 0.3, 0, 0);
  const Pose b = Pose::from_euler({0, 2, 0}, -0.8, 0.1, 0);
  const Pose ab = a * b;
  const Vec3 v{0.5, 0.5, 0.5};
  EXPECT_NEAR(ab.to_world(v).distance(a.to_world(b.to_world(v))), 0, 1e-12);
  const Pose id = a * a.inverse();
  EXPECT_NEAR(id.translation.norm(), 0, 1e-12);
  EXPECT_NEAR(rotation_angle_between(id.rotation, Mat3::identity()), 0, 1e-9);
}

TEST(Camera, CenterPixelLooksForward) {
  CameraIntrinsics cam{640, 480, 1.2};
  const Vec3 ray = cam.pixel_ray({320, 240});
  EXPECT_NEAR(ray.x, 0, 1e-9);
  EXPECT_NEAR(ray.y, 0, 1e-9);
  EXPECT_NEAR(ray.z, 1, 1e-9);
}

TEST(Camera, ProjectUnprojectRoundtrip) {
  CameraIntrinsics cam{640, 480, 1.1};
  const Vec3 p{0.4, -0.2, 3.0};
  const auto px = cam.project(p);
  ASSERT_TRUE(px.has_value());
  const Vec3 ray = cam.pixel_ray(*px);
  // Ray through the pixel should pass through p (same direction).
  EXPECT_NEAR(ray.cross(p.normalized()).norm(), 0.0, 1e-9);
}

TEST(Camera, BehindCameraRejected) {
  CameraIntrinsics cam{640, 480, 1.1};
  EXPECT_FALSE(cam.project({0, 0, -1}).has_value());
}

TEST(Camera, OutOfFrameRejected) {
  CameraIntrinsics cam{640, 480, 1.1};
  EXPECT_FALSE(cam.project({100, 0, 1}).has_value());
}

TEST(Camera, FovEdgeMapsToImageEdge) {
  CameraIntrinsics cam{640, 480, 1.0};
  // A point at exactly half the horizontal FoV projects to x = width.
  const double half = cam.fov_h / 2;
  const auto px = cam.project({std::tan(half) * 0.999, 0, 1});
  ASSERT_TRUE(px.has_value());
  EXPECT_GT(px->x, 638.0);
}

TEST(Angles, GammaMatchesRayAngle) {
  CameraIntrinsics cam{640, 480, 1.15};
  // Fig. 11 gamma should equal the angle between the pixel ray and the
  // optical axis, projected on the x axis.
  for (double px : {0.0, 160.0, 320.0, 480.0, 639.0}) {
    const double gamma = gamma_angle(px, 320.0, cam.fov_h, 640.0);
    const Vec3 ray = cam.pixel_ray({px, 240.0});
    const double expected = std::atan2(ray.x, ray.z);
    EXPECT_NEAR(gamma, expected, 1e-9) << "px=" << px;
  }
}

TEST(Angles, AxisSeparationCases) {
  // Same side: |g1 - g2|; opposite sides: g1 + |g2|.
  EXPECT_NEAR(axis_separation(0.3, 0.1), 0.2, 1e-12);
  EXPECT_NEAR(axis_separation(0.3, -0.1), 0.4, 1e-12);
}

TEST(Angles, SubtendedAngleRightTriangle) {
  // Observer at origin, points at 45 deg on either side of the z axis.
  const Vec3 a{0, 0, 0};
  const double angle =
      subtended_angle_on_plane(a, {1, 0, 1}, {-1, 0, 1}, 0);
  EXPECT_NEAR(angle, kPi / 2, 1e-9);
}

TEST(Clustering, SeparatesTwoBlobs) {
  Rng rng(1);
  std::vector<Vec3> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.gaussian(0, 0.3), rng.gaussian(0, 0.3), 0});
  }
  for (int i = 0; i < 10; ++i) {
    pts.push_back({20 + rng.gaussian(0, 0.3), rng.gaussian(0, 0.3), 0});
  }
  const auto result = cluster_points(pts, {.radius = 2.0, .min_points = 3});
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_EQ(result.clusters[0].size(), 30u);
  EXPECT_EQ(result.clusters[1].size(), 10u);
}

TEST(Clustering, NoiseFiltered) {
  std::vector<Vec3> pts{{0, 0, 0}, {100, 0, 0}, {0, 100, 0}};
  const auto result = cluster_points(pts, {.radius = 1.0, .min_points = 2});
  EXPECT_TRUE(result.clusters.empty());
  for (auto l : result.labels) EXPECT_EQ(l, SIZE_MAX);
}

TEST(Clustering, LargestClusterAndCentroid) {
  std::vector<Vec3> pts{{0, 0, 0}, {0.5, 0, 0}, {1, 0, 0}, {50, 50, 50}};
  const auto big = largest_cluster(pts, {.radius = 1.0, .min_points = 2});
  EXPECT_EQ(big.size(), 3u);
  const Vec3 c = centroid(pts, big);
  EXPECT_NEAR(c.x, 0.5, 1e-12);
}

TEST(Eigen, DiagonalMatrix) {
  const double m[9] = {3, 0, 0, 0, 7, 0, 0, 0, 1};
  const auto es = jacobi_eigen_sym(std::span<const double>(m, 9), 3);
  EXPECT_NEAR(es.values[0], 7, 1e-10);
  EXPECT_NEAR(es.values[1], 3, 1e-10);
  EXPECT_NEAR(es.values[2], 1, 1e-10);
  // Leading eigenvector should be +-e_y.
  EXPECT_NEAR(std::abs(es.vectors[1]), 1.0, 1e-9);
}

TEST(Eigen, SymmetricKnownEigenvalues) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const double m[4] = {2, 1, 1, 2};
  const auto es = jacobi_eigen_sym(std::span<const double>(m, 4), 2);
  EXPECT_NEAR(es.values[0], 3, 1e-10);
  EXPECT_NEAR(es.values[1], 1, 1e-10);
}

TEST(Eigen, HornRecoversRotation) {
  Rng rng(2);
  const Mat3 truth = rotation_zyx(0.7, -0.3, 0.4);
  Mat3 corr{{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}};
  for (int i = 0; i < 50; ++i) {
    const Vec3 b = Vec3{rng.gaussian(), rng.gaussian(), rng.gaussian()}.normalized();
    const Vec3 w = truth * b;
    corr.m[0][0] += w.x * b.x; corr.m[0][1] += w.x * b.y; corr.m[0][2] += w.x * b.z;
    corr.m[1][0] += w.y * b.x; corr.m[1][1] += w.y * b.y; corr.m[1][2] += w.y * b.z;
    corr.m[2][0] += w.z * b.x; corr.m[2][1] += w.z * b.y; corr.m[2][2] += w.z * b.z;
  }
  const Mat3 rec = horn_rotation(corr);
  EXPECT_LT(rotation_angle_between(rec, truth), 1e-6);
}

TEST(DifferentialEvolution, MinimizesSphere) {
  Rng rng(3);
  const auto sphere = [](std::span<const double> v) {
    double s = 0;
    for (double x : v) s += (x - 1.5) * (x - 1.5);
    return s;
  };
  const double lo[3] = {-10, -10, -10};
  const double hi[3] = {10, 10, 10};
  DeConfig cfg;
  cfg.max_generations = 200;
  cfg.time_budget_sec = 5.0;
  const auto result = differential_evolution(sphere, lo, hi, cfg, rng);
  for (double x : result.best) EXPECT_NEAR(x, 1.5, 0.01);
  EXPECT_LT(result.cost, 1e-3);
}

TEST(DifferentialEvolution, RespectsBounds) {
  Rng rng(4);
  const auto f = [](std::span<const double> v) { return -v[0]; };  // push up
  const double lo[1] = {0};
  const double hi[1] = {2};
  const auto result = differential_evolution(f, lo, hi, {}, rng);
  EXPECT_LE(result.best[0], 2.0 + 1e-12);
  EXPECT_NEAR(result.best[0], 2.0, 1e-6);
}

TEST(DifferentialEvolution, TimeBounded) {
  Rng rng(5);
  const auto slow = [](std::span<const double> v) { return v[0] * v[0]; };
  const double lo[1] = {-1};
  const double hi[1] = {1};
  DeConfig cfg;
  cfg.time_budget_sec = 0.0;  // expire immediately
  cfg.max_generations = 1'000'000;
  const auto result = differential_evolution(slow, lo, hi, cfg, rng);
  EXPECT_TRUE(result.hit_time_bound);
  EXPECT_LT(result.generations, 2u);
}

TEST(DifferentialEvolution, BitIdenticalForAnyPoolSize) {
  // Rastrigin-style multimodal objective: pool-size-dependent evaluation
  // order would show up as a different trajectory almost immediately.
  const auto rastrigin = [](std::span<const double> v) {
    double s = 10.0 * static_cast<double>(v.size());
    for (double x : v) s += x * x - 10.0 * std::cos(2.0 * kPi * x);
    return s;
  };
  const double lo[4] = {-5.12, -5.12, -5.12, -5.12};
  const double hi[4] = {5.12, 5.12, 5.12, 5.12};
  DeConfig cfg;
  cfg.max_generations = 60;
  cfg.time_budget_sec = 100.0;  // never hit: the wall clock must not steer

  const auto run = [&](ThreadPool* pool) {
    DeConfig c = cfg;
    c.pool = pool;
    Rng rng(77);  // fresh identically-seeded rng per run
    return differential_evolution(rastrigin, lo, hi, c, rng);
  };
  const DeResult reference = run(nullptr);
  ASSERT_FALSE(reference.hit_time_bound);
  for (const std::size_t threads : {1u, 4u, 16u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    const DeResult got = run(&pool);
    EXPECT_EQ(got.cost, reference.cost);  // exact, not near
    EXPECT_EQ(got.generations, reference.generations);
    EXPECT_EQ(got.hit_time_bound, reference.hit_time_bound);
    ASSERT_EQ(got.best.size(), reference.best.size());
    for (std::size_t d = 0; d < got.best.size(); ++d) {
      EXPECT_EQ(got.best[d], reference.best[d]);
    }
  }
}

TEST(Localize, RecoversKnownCameraPosition) {
  // Build synthetic observations from a known camera.
  CameraIntrinsics intr{640, 480, 1.15};
  const Vec3 cam_pos{3.0, 4.0, 1.5};
  const Mat3 cam_rot = rotation_zyx(0.4, 0.05, 0.0);
  const Pose pose{cam_rot, cam_pos};

  Rng rng(6);
  std::vector<Observation> obs;
  for (int i = 0; i < 25; ++i) {
    const Vec3 body{rng.uniform(-1.5, 1.5), rng.uniform(-1.0, 1.0),
                    rng.uniform(2.5, 7.0)};
    const auto px = intr.project(body);
    if (!px) continue;
    obs.push_back({*px, pose.to_world(body)});
  }
  ASSERT_GE(obs.size(), 10u);

  LocalizeConfig cfg;
  cfg.search_lo = {-10, -10, 0};
  cfg.search_hi = {15, 15, 4};
  cfg.de.time_budget_sec = 2.0;
  cfg.de.max_generations = 500;
  Rng solver_rng(7);
  const auto result = localize(obs, intr, cfg, solver_rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(result->pose.translation.distance(cam_pos), 0.15)
      << "got (" << result->pose.translation.x << ","
      << result->pose.translation.y << "," << result->pose.translation.z << ")";
  // Orientation recovery should be close too.
  EXPECT_LT(rotation_angle_between(result->pose.rotation, cam_rot), 0.05);
}

TEST(Localize, RejectsDegenerateInput) {
  CameraIntrinsics intr{640, 480, 1.15};
  Rng rng(8);
  std::vector<Observation> two{{{10, 10}, {0, 0, 0}}, {{20, 20}, {1, 0, 0}}};
  EXPECT_FALSE(localize(two, intr, {}, rng).has_value());
  // All world points identical -> degenerate spread.
  std::vector<Observation> same{{{10, 10}, {1, 1, 1}},
                                {{40, 40}, {1, 1, 1}},
                                {{80, 20}, {1, 1, 1}}};
  EXPECT_FALSE(localize(same, intr, {}, rng).has_value());
}

TEST(PointGrid, FindsNearest) {
  std::vector<Vec3> pts{{0, 0, 0}, {1, 1, 1}, {5, 5, 5}};
  PointGrid grid(pts, 1.0);
  const auto hit = grid.nearest({0.9, 1.1, 1.0}, 1.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1u);
  EXPECT_FALSE(grid.nearest({100, 100, 100}, 2.0).has_value());
}

TEST(Icp, RecoversSmallRigidTransform) {
  Rng rng(9);
  std::vector<Vec3> target;
  for (int i = 0; i < 400; ++i) {
    // Points on two perpendicular planes (gives ICP full constraints).
    if (i % 2 == 0) {
      target.push_back({rng.uniform(0, 10), rng.uniform(0, 10), 0});
    } else {
      target.push_back({rng.uniform(0, 10), 0, rng.uniform(0, 3)});
    }
  }
  const Pose truth = Pose::from_euler({0.3, -0.2, 0.1}, 0.05, 0.0, 0.0);
  std::vector<Vec3> source;
  const Pose inv = truth.inverse();
  for (const auto& p : target) source.push_back(inv.to_world(p));

  const IcpResult result = icp_align(source, target, {});
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.mean_error, 0.05);
  // Applying the recovered transform to source should land on target.
  double err = 0;
  for (std::size_t i = 0; i < source.size(); ++i) {
    err += result.transform.to_world(source[i]).distance(target[i]);
  }
  EXPECT_LT(err / static_cast<double>(source.size()), 0.05);
}

TEST(Icp, FailsGracefullyWithNoOverlap) {
  std::vector<Vec3> a{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  std::vector<Vec3> b{{100, 100, 100}, {101, 100, 100}, {100, 101, 100}};
  const IcpResult result = icp_align(a, b, {});
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.correspondences, 0u);
}

}  // namespace
}  // namespace vp
