// Property-based and parameterized sweeps over the core invariants:
// Bloom counter packing at every width, LSH locality across parameter
// grids, serialization fuzzing (truncation/corruption must throw, never
// crash), and selection-policy invariants.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "hashing/bloom.hpp"
#include "hashing/lsh.hpp"
#include "hashing/oracle.hpp"
#include "net/wire.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace vp {
namespace {

Descriptor random_descriptor(Rng& rng) {
  Descriptor d;
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.uniform_u64(80));
  return d;
}

Descriptor perturb(const Descriptor& d, Rng& rng, int magnitude) {
  Descriptor out = d;
  for (auto& v : out) {
    const int nv = static_cast<int>(v) +
                   static_cast<int>(rng.uniform_int(-magnitude, magnitude));
    v = static_cast<std::uint8_t>(std::clamp(nv, 0, 255));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Counting Bloom filter: every counter width packs/unpacks correctly.
class CounterBitsTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CounterBitsTest, PackedCountersIndependent) {
  const unsigned bits = GetParam();
  const std::uint32_t max = (1u << bits) - 1;
  CountingBloomFilter f(97, bits);  // prime count forces straddling
  Rng rng(bits);
  std::vector<std::uint32_t> shadow(97, 0);
  for (int step = 0; step < 3000; ++step) {
    const auto i = static_cast<std::size_t>(rng.uniform_u64(97));
    if (rng.chance(0.7)) {
      f.increment(i);
      shadow[i] = std::min(max, shadow[i] + 1);
    } else {
      f.decrement(i);
      shadow[i] = shadow[i] > 0 ? shadow[i] - 1 : 0;
    }
  }
  for (std::size_t i = 0; i < 97; ++i) {
    EXPECT_EQ(f.count(i), shadow[i]) << "bits=" << bits << " idx=" << i;
  }
}

TEST_P(CounterBitsTest, SerializeRoundtrip) {
  const unsigned bits = GetParam();
  CountingBloomFilter f(61, bits);
  Rng rng(bits * 7 + 1);
  for (int i = 0; i < 200; ++i) {
    f.increment(static_cast<std::size_t>(rng.uniform_u64(61)));
  }
  const Bytes blob = f.serialize();
  ByteReader r(blob);
  EXPECT_EQ(CountingBloomFilter::deserialize(r), f);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, CounterBitsTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 8u, 10u,
                                           13u, 16u));

// ---------------------------------------------------------------------------
// LSH locality holds across the (L, M, W) parameter grid.
struct LshParams {
  std::size_t tables;
  std::size_t projections;
  double width;
};

class LshGridTest : public ::testing::TestWithParam<LshParams> {};

TEST_P(LshGridTest, NearCollidesMoreThanFar) {
  const auto p = GetParam();
  E2Lsh lsh(p.tables, p.projections, p.width, 11);
  Rng rng(17);
  int near_hits = 0, far_hits = 0;
  const int trials = 30;
  for (int i = 0; i < trials; ++i) {
    const Descriptor base = random_descriptor(rng);
    const Descriptor near_d = perturb(base, rng, 1);
    const Descriptor far_d = random_descriptor(rng);
    for (std::size_t t = 0; t < p.tables; ++t) {
      near_hits += lsh.bucket(base, t) == lsh.bucket(near_d, t);
      far_hits += lsh.bucket(base, t) == lsh.bucket(far_d, t);
    }
  }
  EXPECT_GT(near_hits, far_hits) << "L=" << p.tables << " M=" << p.projections
                                 << " W=" << p.width;
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, LshGridTest,
    ::testing::Values(LshParams{4, 4, 300}, LshParams{4, 7, 500},
                      LshParams{10, 7, 500}, LshParams{10, 10, 500},
                      LshParams{16, 7, 800}, LshParams{10, 7, 1500}));

// ---------------------------------------------------------------------------
// Oracle ranking quality across aggregates and K.
struct OracleParams {
  OracleAggregate aggregate;
  std::size_t hashes;
};

class OracleGridTest : public ::testing::TestWithParam<OracleParams> {};

TEST_P(OracleGridTest, CommonOutranksUnique) {
  OracleConfig cfg;
  cfg.capacity = 20'000;
  cfg.aggregate = GetParam().aggregate;
  cfg.hashes = GetParam().hashes;
  UniquenessOracle oracle(cfg);
  Rng rng(23);
  const Descriptor common = random_descriptor(rng);
  std::vector<Descriptor> uniques;
  for (int i = 0; i < 30; ++i) oracle.insert(perturb(common, rng, 1));
  for (int i = 0; i < 10; ++i) {
    uniques.push_back(random_descriptor(rng));
    oracle.insert(uniques.back());
  }
  const auto common_count = oracle.count(common);
  for (const auto& u : uniques) {
    EXPECT_GT(common_count, oracle.count(u));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Aggregates, OracleGridTest,
    ::testing::Values(OracleParams{OracleAggregate::kMin, 8},
                      OracleParams{OracleAggregate::kMedian, 8},
                      OracleParams{OracleAggregate::kMean, 8},
                      OracleParams{OracleAggregate::kMax, 8},
                      OracleParams{OracleAggregate::kMedian, 4},
                      OracleParams{OracleAggregate::kMedian, 12}));

// ---------------------------------------------------------------------------
// Serialization fuzz: truncations and random corruptions never crash.
TEST(Fuzz, QueryDecodeNeverCrashesOnTruncation) {
  FingerprintQuery q;
  Rng rng(31);
  q.features.resize(4);
  for (auto& f : q.features) f.descriptor = random_descriptor(rng);
  const Bytes full = q.encode();
  for (std::size_t len = 0; len < full.size(); ++len) {
    Bytes cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(FingerprintQuery::decode(cut), DecodeError) << "len=" << len;
  }
}

TEST(Fuzz, QueryDecodeSurvivesRandomCorruption) {
  FingerprintQuery q;
  Rng rng(37);
  q.features.resize(8);
  const Bytes full = q.encode();
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = full;
    const auto pos = static_cast<std::size_t>(rng.uniform_u64(mutated.size()));
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    try {
      const auto decoded = FingerprintQuery::decode(mutated);
      // Decoding may succeed (payload bytes flipped); sizes stay sane.
      EXPECT_LE(decoded.features.size(), 1'000'000u);
    } catch (const DecodeError&) {
      // Equally fine: corruption detected.
    }
  }
}

TEST(Fuzz, OracleDeserializeSurvivesCorruption) {
  OracleConfig cfg;
  cfg.capacity = 5'000;
  UniquenessOracle oracle(cfg);
  Rng rng(41);
  for (int i = 0; i < 5; ++i) oracle.insert(random_descriptor(rng));
  const Bytes blob = oracle.serialize();
  for (int trial = 0; trial < 100; ++trial) {
    Bytes mutated = blob;
    const auto pos = static_cast<std::size_t>(rng.uniform_u64(64));
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    try {
      (void)UniquenessOracle::deserialize(mutated);
    } catch (const Error&) {
      // DecodeError or InvalidArgument are both acceptable outcomes.
    }
  }
}

TEST(Fuzz, LocationResponseTruncation) {
  LocationResponse resp;
  resp.place_label = "somewhere";
  const Bytes full = resp.encode();
  for (std::size_t len = 0; len < full.size(); ++len) {
    Bytes cut(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(LocationResponse::decode(cut), DecodeError);
  }
}

// ---------------------------------------------------------------------------
// Selection invariants across policies and k.
class SelectionKTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SelectionKTest, SelectionSizeAndMembership) {
  const std::size_t k = GetParam();
  Rng rng(43);
  std::vector<Feature> features(37);
  for (auto& f : features) f.descriptor = random_descriptor(rng);

  OracleConfig oc;
  oc.capacity = 5'000;
  UniquenessOracle oracle(oc);
  for (const auto& f : features) oracle.insert(f.descriptor);

  for (auto policy : {SelectionPolicy::kMostUnique, SelectionPolicy::kRandom}) {
    ClientConfig cc;
    cc.policy = policy;
    VisualPrintClient client(cc, 7);
    if (policy == SelectionPolicy::kMostUnique) {
      client.install_oracle(UniquenessOracle::deserialize(oracle.serialize()));
    }
    const auto selected = client.select_features(features, k);
    EXPECT_EQ(selected.size(), std::min(k, features.size()));
    // Every selected descriptor must come from the input set.
    for (const auto& s : selected) {
      const bool member =
          std::any_of(features.begin(), features.end(), [&](const Feature& f) {
            return f.descriptor == s.descriptor;
          });
      EXPECT_TRUE(member);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(VariousK, SelectionKTest,
                         ::testing::Values(1u, 5u, 20u, 37u, 100u));

// ---------------------------------------------------------------------------
// CDF invariants on random data.
TEST(PropertyStats, CdfIsADistributionFunction) {
  Rng rng(47);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v;
    const int n = 1 + static_cast<int>(rng.uniform_u64(200));
    for (int i = 0; i < n; ++i) v.push_back(rng.gaussian(0, 10));
    EmpiricalCdf cdf(v);
    EXPECT_DOUBLE_EQ(cdf.at(1e18), 1.0);
    EXPECT_DOUBLE_EQ(cdf.at(-1e18), 0.0);
    const double q25 = cdf.quantile(0.25);
    const double q75 = cdf.quantile(0.75);
    EXPECT_LE(q25, q75);
    EXPECT_GE(cdf.at(q75) - cdf.at(q25), 0.0);
  }
}

TEST(PropertyStats, PercentileWithinMinMax) {
  Rng rng(53);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v;
    const int n = 1 + static_cast<int>(rng.uniform_u64(50));
    for (int i = 0; i < n; ++i) v.push_back(rng.uniform(-5, 5));
    const double p = rng.uniform(0, 100);
    const double val = percentile(v, p);
    EXPECT_GE(val, *std::min_element(v.begin(), v.end()) - 1e-12);
    EXPECT_LE(val, *std::max_element(v.begin(), v.end()) + 1e-12);
  }
}

}  // namespace
}  // namespace vp
