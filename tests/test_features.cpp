#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>

#include "features/distance.hpp"
#include "features/pq.hpp"
#include "features/draw.hpp"
#include "features/keypoint.hpp"
#include "features/pca.hpp"
#include "features/sift.hpp"
#include "imaging/filters.hpp"
#include "scene/texture.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

/// A textured test image with plenty of corners and blobs.
ImageF test_pattern(int w, int h, std::uint64_t seed) {
  Rng rng(seed);
  return painting_texture(w, h, rng);
}

TEST(Descriptor, DistanceBasics) {
  Descriptor a{}, b{};
  EXPECT_EQ(descriptor_distance2(a, b), 0u);
  b[0] = 3;
  b[127] = 4;
  EXPECT_EQ(descriptor_distance2(a, b), 25u);
  EXPECT_EQ(descriptor_distance2(b, a), 25u);  // symmetric
}

TEST(Descriptor, DistanceMaxBound) {
  Descriptor a{}, b{};
  for (auto& v : b) v = 255;
  EXPECT_EQ(descriptor_distance2(a, b), 128u * 255u * 255u);
}

TEST(DistanceKernels, ScalarAlwaysCompiledAndActiveIsCompiled) {
  const auto kernels = compiled_distance_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front(), DistanceKernel::kScalar);
  bool active_listed = false;
  for (const auto k : kernels) active_listed |= (k == active_distance_kernel());
  EXPECT_TRUE(active_listed);
  EXPECT_FALSE(kernel_name(active_distance_kernel()).empty());
}

// Every compiled-in kernel must agree bit-for-bit with the scalar loop:
// 10k random pairs plus the adversarial extremes (all-zero, all-255, and
// saturating alternations that maximize each i16 lane product).
TEST(DistanceKernels, BitIdenticalToScalarOnRandomAndAdversarialPairs) {
  std::vector<std::pair<Descriptor, Descriptor>> pairs;
  Rng rng(0xd15ul);
  for (int i = 0; i < 10'000; ++i) {
    Descriptor a, b;
    for (auto& v : a) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
    pairs.emplace_back(a, b);
  }
  Descriptor zeros{}, maxed{}, alt_a{}, alt_b{};
  for (auto& v : maxed) v = 255;
  for (std::size_t i = 0; i < kDescriptorDims; ++i) {
    alt_a[i] = (i % 2 == 0) ? 255 : 0;  // max |diff| in every lane, both
    alt_b[i] = (i % 2 == 0) ? 0 : 255;  // signs through the widen+madd
  }
  pairs.emplace_back(zeros, zeros);
  pairs.emplace_back(zeros, maxed);
  pairs.emplace_back(maxed, maxed);
  pairs.emplace_back(alt_a, alt_b);
  pairs.emplace_back(alt_a, maxed);

  for (const DistanceKernel kernel : compiled_distance_kernels()) {
    SCOPED_TRACE(std::string(kernel_name(kernel)));
    for (const auto& [a, b] : pairs) {
      const std::uint32_t expected =
          distance2_u8_128_with(DistanceKernel::kScalar, a.data(), b.data());
      EXPECT_EQ(distance2_u8_128_with(kernel, a.data(), b.data()), expected);
    }
  }
}

TEST(DistanceKernels, SetKernelSwitchesDispatchAndRejectsUncompiled) {
  const DistanceKernel original = active_distance_kernel();
  for (const DistanceKernel kernel : compiled_distance_kernels()) {
    ASSERT_TRUE(set_distance_kernel(kernel));
    EXPECT_EQ(active_distance_kernel(), kernel);
    Descriptor a{}, b{};
    b[0] = 3;
    b[127] = 4;
    EXPECT_EQ(descriptor_distance2(a, b), 25u);  // dispatch stays exact
  }
  // A kernel for a foreign architecture is never switchable: NEON on x86
  // builds, AVX2 on ARM builds (and everything but scalar under
  // VP_DISABLE_SIMD).
  const auto kernels = compiled_distance_kernels();
  for (const DistanceKernel probe :
       {DistanceKernel::kSse41, DistanceKernel::kAvx2, DistanceKernel::kNeon}) {
    bool compiled = false;
    for (const auto k : kernels) compiled |= (k == probe);
    if (!compiled) EXPECT_FALSE(set_distance_kernel(probe));
  }
  ASSERT_TRUE(set_distance_kernel(original));
}

TEST(HammingKernels, ScalarAlwaysCompiledAndActiveIsCompiled) {
  const auto kernels = compiled_hamming_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front(), HammingKernel::kScalar);
  bool active_listed = false;
  for (const auto k : kernels) active_listed |= (k == active_hamming_kernel());
  EXPECT_TRUE(active_listed);
  EXPECT_FALSE(kernel_name(active_hamming_kernel()).empty());
}

// Every compiled-in popcount kernel must agree bit-for-bit with a naive
// bit-at-a-time count: 10k random word pairs plus the adversarial
// patterns (all-zero, all-ones, alternating nibbles that exercise every
// entry of the AVX2 nibble lookup, and single-bit words).
TEST(HammingKernels, BitIdenticalToNaiveOnRandomAndAdversarialWords) {
  using Words = std::array<std::uint64_t, 4>;
  std::vector<std::pair<Words, Words>> pairs;
  Rng rng(0xbadb17ul);
  for (int i = 0; i < 10'000; ++i) {
    Words a, b;
    for (auto& w : a) w = rng.next_u64();
    for (auto& w : b) w = rng.next_u64();
    pairs.emplace_back(a, b);
  }
  const Words zeros{}, ones{0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull,
                          0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull};
  const Words nibbles{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull,
                      0xAAAAAAAAAAAAAAAAull, 0x5555555555555555ull};
  Words one_bit{};
  one_bit[3] = 1ull << 63;
  pairs.emplace_back(zeros, zeros);
  pairs.emplace_back(zeros, ones);
  pairs.emplace_back(ones, ones);
  pairs.emplace_back(nibbles, zeros);
  pairs.emplace_back(one_bit, zeros);

  for (const auto& [a, b] : pairs) {
    std::uint32_t naive = 0;
    for (std::size_t w = 0; w < kHammingWords; ++w) {
      const std::uint64_t x = a[w] ^ b[w];
      for (int bit = 0; bit < 64; ++bit) naive += (x >> bit) & 1u;
    }
    for (const HammingKernel kernel : compiled_hamming_kernels()) {
      SCOPED_TRACE(std::string(kernel_name(kernel)));
      EXPECT_EQ(hamming256_with(kernel, a.data(), b.data()), naive);
    }
  }
}

TEST(HammingKernels, SetKernelSwitchesDispatchAndRejectsUncompiled) {
  const HammingKernel original = active_hamming_kernel();
  const std::array<std::uint64_t, 4> a{1, 2, 3, 4};
  const std::array<std::uint64_t, 4> b{0, 2, 3, 0xF4};
  // a^b = {1, 0, 0, 0xF0} -> 1 + 0 + 0 + 4 bits.
  for (const HammingKernel kernel : compiled_hamming_kernels()) {
    ASSERT_TRUE(set_hamming_kernel(kernel));
    EXPECT_EQ(active_hamming_kernel(), kernel);
    EXPECT_EQ(hamming256(a.data(), b.data()), 5u);
  }
  const auto kernels = compiled_hamming_kernels();
  for (const HammingKernel probe :
       {HammingKernel::kPopcnt, HammingKernel::kAvx2, HammingKernel::kNeon}) {
    bool compiled = false;
    for (const auto k : kernels) compiled |= (k == probe);
    if (!compiled) EXPECT_FALSE(set_hamming_kernel(probe));
  }
  ASSERT_TRUE(set_hamming_kernel(original));
}

/// `count` random full-range descriptors at 128-byte stride (the LshIndex
/// flat-buffer layout PqCodebook::train consumes).
std::vector<std::uint8_t> random_flat_descriptors(std::size_t count,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> flat(count * kDescriptorDims);
  for (auto& v : flat) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
  return flat;
}

TEST(Pq, TrainIsDeterministicAndEncodesStably) {
  const auto flat = random_flat_descriptors(600, 0x9001ul);
  const PqCodebook a = PqCodebook::train(flat.data(), 600);
  const PqCodebook b = PqCodebook::train(flat.data(), 600);
  ASSERT_TRUE(a.trained());
  ASSERT_EQ(a.raw().size(), kPqCodebookBytes);
  ASSERT_TRUE(std::equal(a.raw().begin(), a.raw().end(), b.raw().begin()));
  std::array<std::uint8_t, kPqCodeBytes> ca{}, cb{};
  a.encode(flat.data(), ca.data());
  b.encode(flat.data(), cb.data());
  EXPECT_EQ(ca, cb);
  // An untrained codebook comes from an empty training set.
  EXPECT_FALSE(PqCodebook::train(flat.data(), 0).trained());
}

TEST(Pq, EncodePicksNearestCentroidTiesToLowest) {
  // Hand-crafted codebook: in every subspace, centroid c is the constant
  // vector (c). A descriptor of constant value v must encode to round(v)
  // per subspace; centroids 0 and 1 duplicated would tie to the lower id.
  std::vector<std::uint8_t> raw(kPqCodebookBytes);
  for (std::size_t s = 0; s < kPqSubspaces; ++s) {
    for (std::size_t c = 0; c < kPqCentroids; ++c) {
      for (std::size_t d = 0; d < kPqSubDims; ++d) {
        raw[(s * kPqCentroids + c) * kPqSubDims + d] =
            static_cast<std::uint8_t>(c);
      }
    }
  }
  const PqCodebook book = PqCodebook::from_raw(raw);
  Descriptor q;
  for (std::size_t i = 0; i < kDescriptorDims; ++i) {
    q[i] = static_cast<std::uint8_t>(17 * (i / kPqSubDims));
  }
  std::array<std::uint8_t, kPqCodeBytes> code{};
  book.encode(q.data(), code.data());
  for (std::size_t s = 0; s < kPqSubspaces; ++s) {
    EXPECT_EQ(code[s], static_cast<std::uint8_t>(17 * s));
  }
}

TEST(Pq, FromRawRoundtripAndRejectsBadSize) {
  const auto flat = random_flat_descriptors(300, 0x9002ul);
  const PqCodebook book = PqCodebook::train(flat.data(), 300);
  const PqCodebook back =
      PqCodebook::from_raw({book.raw().data(), book.raw().size()});
  ASSERT_TRUE(back.trained());
  EXPECT_TRUE(std::equal(book.raw().begin(), book.raw().end(),
                         back.raw().begin()));
  std::vector<std::uint8_t> short_raw(kPqCodebookBytes - 1);
  std::vector<std::uint8_t> long_raw(kPqCodebookBytes + 1);
  EXPECT_THROW(PqCodebook::from_raw(short_raw), DecodeError);
  EXPECT_THROW(PqCodebook::from_raw(long_raw), DecodeError);
  EXPECT_THROW(PqCodebook::from_raw({}), DecodeError);
}

TEST(Pq, ReconstructConcatenatesTheCodesCentroids) {
  const auto flat = random_flat_descriptors(400, 0x9008ul);
  const PqCodebook book = PqCodebook::train(flat.data(), 400);
  std::array<std::uint8_t, kPqCodeBytes> code{};
  book.encode(flat.data() + 11 * kDescriptorDims, code.data());
  Descriptor rebuilt{};
  book.reconstruct(code.data(), rebuilt.data());
  for (std::size_t s = 0; s < kPqSubspaces; ++s) {
    const std::uint8_t* cent = book.centroid(s, code[s]);
    for (std::size_t d = 0; d < kPqSubDims; ++d) {
      EXPECT_EQ(rebuilt[s * kPqSubDims + d], cent[d]);
    }
  }
  // Encoding the reconstruction is a fixed point: the nearest centroid of
  // a centroid is itself (ties to the lowest id can only pick an equal
  // centroid, which leaves the reconstruction unchanged).
  std::array<std::uint8_t, kPqCodeBytes> again{};
  book.encode(rebuilt.data(), again.data());
  Descriptor rebuilt2{};
  book.reconstruct(again.data(), rebuilt2.data());
  EXPECT_EQ(rebuilt, rebuilt2);
}

TEST(Pq, SymmetricAdcTableMatchesAsymmetricOnReconstruction) {
  // The compact-uplink fast path: gathering rows of the precomputed
  // centroid-distance matrix must equal building the table from the
  // reconstructed descriptor, entry for entry — that identity is what
  // lets the server skip the table build without changing any ranking.
  const auto flat = random_flat_descriptors(500, 0x9009ul);
  const PqCodebook book = PqCodebook::train(flat.data(), 500);
  for (const std::size_t pick : {std::size_t{0}, std::size_t{123},
                                 std::size_t{499}}) {
    SCOPED_TRACE(pick);
    std::array<std::uint8_t, kPqCodeBytes> code{};
    book.encode(flat.data() + pick * kDescriptorDims, code.data());
    Descriptor rebuilt{};
    book.reconstruct(code.data(), rebuilt.data());
    AdcTable asym, sym;
    book.build_adc_table(rebuilt.data(), asym);
    book.build_symmetric_adc_table(code.data(), sym);
    for (std::size_t i = 0; i < kPqSubspaces * kPqCentroids; ++i) {
      ASSERT_EQ(sym.d[i], asym.d[i]) << "entry " << i;
    }
  }
  // Codebook copies share the lazily built matrix and agree with it.
  const PqCodebook copy = book;
  std::array<std::uint8_t, kPqCodeBytes> code{};
  book.encode(flat.data(), code.data());
  AdcTable a, b;
  book.build_symmetric_adc_table(code.data(), a);
  copy.build_symmetric_adc_table(code.data(), b);
  EXPECT_EQ(a.d, b.d);
}

TEST(AdcKernels, ScalarAlwaysCompiledAndActiveIsCompiled) {
  const auto kernels = compiled_adc_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front(), DistanceKernel::kScalar);
  bool active_listed = false;
  for (const auto k : kernels) active_listed |= (k == active_adc_kernel());
  EXPECT_TRUE(active_listed);
}

TEST(AdcKernels, AdcDistanceMatchesNaiveTableSum) {
  const auto flat = random_flat_descriptors(500, 0x9003ul);
  const PqCodebook book = PqCodebook::train(flat.data(), 500);
  const auto query = random_flat_descriptors(1, 0x9004ul);
  AdcTable table;
  book.build_adc_table(query.data(), table);
  // Every table entry is the saturated exact subspace distance.
  for (std::size_t s = 0; s < kPqSubspaces; ++s) {
    for (std::size_t c = 0; c < kPqCentroids; ++c) {
      std::uint32_t d2 = 0;
      const std::uint8_t* cent = book.centroid(s, c);
      for (std::size_t d = 0; d < kPqSubDims; ++d) {
        const std::int32_t diff =
            static_cast<std::int32_t>(query[s * kPqSubDims + d]) - cent[d];
        d2 += static_cast<std::uint32_t>(diff * diff);
      }
      EXPECT_EQ(table.d[s * kPqCentroids + c],
                static_cast<std::uint16_t>(std::min<std::uint32_t>(d2, 0xFFFF)));
    }
  }
  std::array<std::uint8_t, kPqCodeBytes> code{};
  book.encode(flat.data() + 37 * kDescriptorDims, code.data());
  std::uint32_t naive = 0;
  for (std::size_t s = 0; s < kPqSubspaces; ++s) {
    naive += table.d[s * kPqCentroids + code[s]];
  }
  EXPECT_EQ(adc_distance(table, code.data()), naive);
}

// Every compiled ADC kernel must produce the scalar kernel's sums, both
// for sequential scans (ids == nullptr) and gathered id lists, including
// a table where entries saturate at 0xFFFF — which also proves the AVX2
// gather masks its 32-bit loads down to the 16-bit entry.
TEST(AdcKernels, BitIdenticalToScalarWithAndWithoutIds) {
  const std::size_t n = 517;  // odd length: exercises kernel tails
  const auto flat = random_flat_descriptors(n, 0x9005ul);
  const PqCodebook trained = PqCodebook::train(flat.data(), n);
  std::vector<std::uint8_t> codes(n * kPqCodeBytes);
  for (std::size_t i = 0; i < n; ++i) {
    trained.encode(flat.data() + i * kDescriptorDims,
                   codes.data() + i * kPqCodeBytes);
  }
  // Saturating codebook: every centroid byte 255, query all zero ->
  // every table entry is exactly 0xFFFF.
  const PqCodebook maxed = PqCodebook::from_raw(
      std::vector<std::uint8_t>(kPqCodebookBytes, 255));
  const Descriptor zero_query{};
  Rng rng(0x9006ul);
  std::vector<std::uint32_t> ids(257);
  for (auto& id : ids) {
    id = static_cast<std::uint32_t>(rng.uniform_u64(n));
  }

  for (const bool saturated : {false, true}) {
    SCOPED_TRACE(saturated ? "saturated" : "trained");
    AdcTable table;
    if (saturated) {
      maxed.build_adc_table(zero_query.data(), table);
      EXPECT_EQ(table.d[0], 0xFFFFu);
      EXPECT_EQ(table.d[kPqSubspaces * kPqCentroids - 1], 0xFFFFu);
    } else {
      trained.build_adc_table(flat.data() + 3 * kDescriptorDims, table);
    }
    std::vector<std::uint32_t> expect_seq(n), expect_ids(ids.size());
    adc_scan_with(DistanceKernel::kScalar, table, codes.data(), nullptr, n,
                  expect_seq.data());
    adc_scan_with(DistanceKernel::kScalar, table, codes.data(), ids.data(),
                  ids.size(), expect_ids.data());
    if (saturated) {
      EXPECT_EQ(expect_seq[0], 16u * 0xFFFFu);
    }
    for (const DistanceKernel kernel : compiled_adc_kernels()) {
      SCOPED_TRACE(std::string(kernel_name(kernel)));
      std::vector<std::uint32_t> got_seq(n), got_ids(ids.size());
      adc_scan_with(kernel, table, codes.data(), nullptr, n, got_seq.data());
      adc_scan_with(kernel, table, codes.data(), ids.data(), ids.size(),
                    got_ids.data());
      EXPECT_EQ(got_seq, expect_seq);
      EXPECT_EQ(got_ids, expect_ids);
    }
  }
}

TEST(AdcKernels, SetKernelSwitchesDispatchAndRejectsUncompiled) {
  const DistanceKernel original = active_adc_kernel();
  const auto flat = random_flat_descriptors(300, 0x9007ul);
  const PqCodebook book = PqCodebook::train(flat.data(), 300);
  AdcTable table;
  book.build_adc_table(flat.data(), table);
  std::array<std::uint8_t, kPqCodeBytes> code{};
  book.encode(flat.data(), code.data());
  std::uint32_t expected = 0;
  for (std::size_t s = 0; s < kPqSubspaces; ++s) {
    expected += table.d[s * kPqCentroids + code[s]];
  }
  for (const DistanceKernel kernel : compiled_adc_kernels()) {
    ASSERT_TRUE(set_adc_kernel(kernel));
    EXPECT_EQ(active_adc_kernel(), kernel);
    EXPECT_EQ(adc_distance(table, code.data()), expected);
  }
  const auto kernels = compiled_adc_kernels();
  for (const DistanceKernel probe :
       {DistanceKernel::kSse41, DistanceKernel::kAvx2, DistanceKernel::kNeon}) {
    bool compiled = false;
    for (const auto k : kernels) compiled |= (k == probe);
    if (!compiled) EXPECT_FALSE(set_adc_kernel(probe));
  }
  ASSERT_TRUE(set_adc_kernel(original));
}

TEST(Feature, SerializeRoundtrip) {
  Feature f;
  f.keypoint = {12.5f, 33.25f, 2.0f, -1.2f, 0.5f, 1};
  for (std::size_t i = 0; i < kDescriptorDims; ++i) {
    f.descriptor[i] = static_cast<std::uint8_t>(i * 2);
  }
  ByteWriter w;
  serialize_feature(f, w);
  EXPECT_EQ(w.size(), kFeatureWireBytes);
  ByteReader r(w.bytes());
  const Feature back = deserialize_feature(r);
  EXPECT_EQ(back.keypoint.x, f.keypoint.x);
  EXPECT_EQ(back.keypoint.orientation, f.keypoint.orientation);
  EXPECT_EQ(back.descriptor, f.descriptor);
}

TEST(Feature, ListSerializeRoundtripAndTrailingBytes) {
  std::vector<Feature> fs(3);
  fs[1].keypoint.x = 7;
  Bytes b = serialize_features(fs);
  const auto back = deserialize_features(b);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[1].keypoint.x, 7);
  b.push_back(0);
  EXPECT_THROW(deserialize_features(b), DecodeError);
}

TEST(Sift, FindsKeypointsOnTexturedImage) {
  const ImageF img = test_pattern(200, 150, 1);
  const auto features = sift_detect(img);
  EXPECT_GT(features.size(), 30u);
  for (const auto& f : features) {
    EXPECT_GE(f.keypoint.x, 0);
    EXPECT_LT(f.keypoint.x, 200);
    EXPECT_GE(f.keypoint.y, 0);
    EXPECT_LT(f.keypoint.y, 150);
    EXPECT_GT(f.keypoint.scale, 0);
  }
}

TEST(Sift, BlankImageHasNoKeypoints) {
  const ImageF img(128, 128, 1, 128.0f);
  EXPECT_TRUE(sift_detect(img).empty());
}

TEST(Sift, DeterministicAcrossRuns) {
  const ImageF img = test_pattern(160, 120, 2);
  const auto a = sift_detect(img);
  const auto b = sift_detect(img);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].keypoint.x, b[i].keypoint.x);
    EXPECT_EQ(a[i].descriptor, b[i].descriptor);
  }
}

// The contract the threaded pipeline must honor: the pool is a pure speed
// knob. Every pool size yields byte-identical descriptors in the same
// keypoint order as the sequential path.
TEST(Sift, BitIdenticalAcrossPoolSizes) {
  const ImageF img = test_pattern(320, 240, 4);
  const auto baseline = sift_detect(img);
  ASSERT_GT(baseline.size(), 30u);

  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    SiftConfig cfg;
    cfg.pool = &pool;
    const auto got = sift_detect(img, cfg);
    ASSERT_EQ(got.size(), baseline.size()) << threads << " threads";
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].keypoint.x, baseline[i].keypoint.x);
      EXPECT_EQ(got[i].keypoint.y, baseline[i].keypoint.y);
      EXPECT_EQ(got[i].keypoint.scale, baseline[i].keypoint.scale);
      EXPECT_EQ(got[i].keypoint.orientation, baseline[i].keypoint.orientation);
      EXPECT_EQ(got[i].keypoint.response, baseline[i].keypoint.response);
      EXPECT_EQ(got[i].keypoint.octave, baseline[i].keypoint.octave);
      EXPECT_EQ(got[i].descriptor, baseline[i].descriptor);
    }
  }
}

TEST(Sift, ShiftEquivariance) {
  // Embed the same pattern at two offsets; keypoints should shift along.
  const ImageF pattern = test_pattern(100, 100, 3);
  auto embed = [&](int off) {
    ImageF canvas(220, 220, 1, 100.0f);
    for (int y = 0; y < 100; ++y) {
      for (int x = 0; x < 100; ++x) {
        canvas(x + off, y + off) = pattern(x, y);
      }
    }
    return canvas;
  };
  const auto a = sift_detect_keypoints(embed(20));
  const auto b = sift_detect_keypoints(embed(60));
  ASSERT_GT(a.size(), 10u);
  // For each keypoint in a (interior), expect a close match in b at +40.
  int matched = 0, considered = 0;
  for (const auto& ka : a) {
    if (ka.x < 30 || ka.x > 110 || ka.y < 30 || ka.y > 110) continue;
    ++considered;
    for (const auto& kb : b) {
      if (std::abs(kb.x - (ka.x + 40)) < 1.5 &&
          std::abs(kb.y - (ka.y + 40)) < 1.5) {
        ++matched;
        break;
      }
    }
  }
  ASSERT_GT(considered, 5);
  EXPECT_GT(static_cast<double>(matched) / considered, 0.8);
}

TEST(Sift, BlurReducesKeypointCount) {
  const ImageF img = test_pattern(200, 150, 4);
  const auto sharp = sift_detect_keypoints(img);
  const auto blurred = sift_detect_keypoints(gaussian_blur(img, 3.0));
  EXPECT_LT(blurred.size(), sharp.size() * 4 / 5);
}

TEST(Sift, MaxFeaturesKeepsStrongest) {
  const ImageF img = test_pattern(200, 150, 5);
  SiftConfig unlimited;
  SiftConfig capped;
  capped.max_features = 20;
  const auto all = sift_detect(img, unlimited);
  const auto top = sift_detect(img, capped);
  ASSERT_GT(all.size(), top.size());
  // Strongest response in the capped set should match the global max.
  float max_all = 0, max_top = 0;
  for (const auto& f : all) max_all = std::max(max_all, f.keypoint.response);
  for (const auto& f : top) max_top = std::max(max_top, f.keypoint.response);
  EXPECT_EQ(max_all, max_top);
}

TEST(Sift, DescriptorMatchesUnderNoise) {
  // The same scene with mild noise: descriptors should match their
  // counterparts far better than chance.
  const ImageF img = test_pattern(180, 140, 6);
  ImageF noisy = img;
  Rng rng(7);
  add_gaussian_noise(noisy, 3.0, rng);

  const auto fa = sift_detect(img);
  const auto fb = sift_detect(noisy);
  ASSERT_GT(fa.size(), 20u);
  ASSERT_GT(fb.size(), 20u);

  int good = 0, total = 0;
  for (const auto& a : fa) {
    // Find spatially-corresponding keypoint in b.
    const Feature* best = nullptr;
    for (const auto& b : fb) {
      if (std::abs(b.keypoint.x - a.keypoint.x) < 2 &&
          std::abs(b.keypoint.y - a.keypoint.y) < 2) {
        best = &b;
        break;
      }
    }
    if (!best) continue;
    ++total;
    // Distance to its counterpart should be small relative to the typical
    // random-pair distance (~2 * 512^2 for unit-norm-512 descriptors).
    if (descriptor_distance2(a.descriptor, best->descriptor) < 120'000) {
      ++good;
    }
  }
  ASSERT_GT(total, 10);
  EXPECT_GT(static_cast<double>(good) / total, 0.7);
}

TEST(Sift, UpsampledFirstOctaveFindsMore) {
  const ImageF img = test_pattern(120, 90, 8);
  SiftConfig normal;
  SiftConfig up;
  up.upsample_first_octave = true;
  EXPECT_GE(sift_detect_keypoints(img, up).size(),
            sift_detect_keypoints(img, normal).size());
}

TEST(Sift, ScaleSpaceShape) {
  const ImageF img = test_pattern(128, 128, 9);
  SiftConfig cfg;
  const auto ss = detail::build_scale_space(img, cfg);
  ASSERT_GE(ss.gaussians.size(), 2u);
  for (std::size_t o = 0; o < ss.gaussians.size(); ++o) {
    EXPECT_EQ(ss.gaussians[o].size(),
              static_cast<std::size_t>(cfg.intervals + 3));
    EXPECT_EQ(ss.dogs[o].size(), static_cast<std::size_t>(cfg.intervals + 2));
  }
  // Each octave halves resolution.
  EXPECT_EQ(ss.gaussians[1][0].width(), ss.gaussians[0][0].width() / 2);
}

TEST(Sift, DescriptorQuantizationBounds) {
  const ImageF img = test_pattern(160, 120, 10);
  for (const auto& f : sift_detect(img)) {
    // Normalized-clamped-renormalized u8 quantization: no element can
    // exceed 512 * 0.2 * renorm factor; 255 cap enforced.
    std::uint32_t norm2 = 0;
    for (auto v : f.descriptor) norm2 += v * v;
    // Unit-ish norm at 512 quantization: |d| should be near 512.
    EXPECT_GT(norm2, 100'000u);
    EXPECT_LT(norm2, 400'000u);
  }
}

TEST(Pca, NormalizedEigenvaluesDescending) {
  Rng rng(11);
  std::vector<Descriptor> descs;
  const ImageF img = test_pattern(200, 160, 12);
  for (const auto& f : sift_detect(img)) descs.push_back(f.descriptor);
  ASSERT_GE(descs.size(), 30u);
  const auto vals = pca_normalized_eigenvalues(descs);
  ASSERT_EQ(vals.size(), kDescriptorDims);
  EXPECT_DOUBLE_EQ(vals[0], 1.0);
  for (std::size_t i = 1; i < vals.size(); ++i) {
    EXPECT_LE(vals[i], vals[i - 1] + 1e-9);
    EXPECT_GE(vals[i], 0.0);
  }
}

TEST(Pca, FewDimensionsCaptureMostVariance) {
  // The paper's Fig. 6(b) claim: a small number of PCA dimensions explain
  // most covariance of real SIFT descriptors.
  std::vector<Descriptor> descs;
  for (std::uint64_t seed : {13, 14, 15}) {
    const ImageF img = test_pattern(240, 180, seed);
    for (const auto& f : sift_detect(img)) descs.push_back(f.descriptor);
  }
  ASSERT_GE(descs.size(), 50u);
  const auto vals = pca_normalized_eigenvalues(descs);
  EXPECT_GT(pca_variance_captured(vals, 32), 0.6);
  EXPECT_GT(pca_variance_captured(vals, 64),
            pca_variance_captured(vals, 16));
}

TEST(Pca, DimensionProfileSorted) {
  std::vector<std::pair<Descriptor, Descriptor>> pairs;
  Rng rng(14);
  for (int i = 0; i < 40; ++i) {
    Descriptor a{}, b{};
    for (std::size_t d = 0; d < kDescriptorDims; ++d) {
      a[d] = static_cast<std::uint8_t>(rng.uniform_u64(256));
      b[d] = static_cast<std::uint8_t>(rng.uniform_u64(256));
    }
    pairs.emplace_back(a, b);
  }
  const auto profile = dimension_difference_profile(pairs);
  ASSERT_EQ(profile.size(), kDescriptorDims);
  // Rank-0 (largest diff) must dominate the last rank.
  EXPECT_GT(profile.front().median, profile.back().median);
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_LE(profile[i].median, profile[i - 1].median + 1e-9);
  }
}

TEST(Draw, KeypointOverlayStaysInBounds) {
  ImageU8 base(64, 48, 1, 10);
  std::vector<Keypoint> kps{{-5, -5, 3, 0, 0, 0},
                            {63.9f, 47.9f, 10, 2.0f, 0, 0},
                            {32, 24, 4, 1.0f, 0, 0}};
  const ImageU8 out = draw_keypoints(base, kps);
  EXPECT_EQ(out.channels(), 3);
  EXPECT_EQ(out.width(), 64);
  // Center keypoint should have drawn green somewhere near (32,24).
  bool green = false;
  for (int y = 10; y < 40 && !green; ++y) {
    for (int x = 16; x < 48 && !green; ++x) {
      if (out(x, y, 1) == 255 && out(x, y, 0) == 0) green = true;
    }
  }
  EXPECT_TRUE(green);
}

TEST(Draw, LineEndpoints) {
  ImageU8 img(10, 10, 3, 0);
  draw_line(img, 1, 1, 8, 8, {255, 0, 0});
  EXPECT_EQ(img(1, 1, 0), 255);
  EXPECT_EQ(img(8, 8, 0), 255);
}

}  // namespace
}  // namespace vp
