#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = rng.uniform_u64(17);
    EXPECT_LT(v, 17u);
    const auto w = rng.uniform_int(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
  }
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(42);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(rng.gaussian());
  EXPECT_NEAR(rs.mean(), 0.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.05);
}

TEST(Rng, GaussianScaled) {
  Rng rng(43);
  RunningStats rs;
  for (int i = 0; i < 20000; ++i) rs.add(rng.gaussian(10.0, 3.0));
  EXPECT_NEAR(rs.mean(), 10.0, 0.2);
  EXPECT_NEAR(rs.stddev(), 3.0, 0.15);
}

TEST(Rng, ForkIsDecorrelated) {
  Rng a(5);
  Rng child = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == child.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Stats, PercentileBasics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Stats, PercentileRejectsBadInput) {
  std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 50), InvalidArgument);
  std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1), InvalidArgument);
  EXPECT_THROW(percentile(v, 101), InvalidArgument);
}

TEST(Stats, MeanStddev) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
}

TEST(Stats, SummaryQuartiles) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.median, 51);
  EXPECT_DOUBLE_EQ(s.max, 101);
  EXPECT_DOUBLE_EQ(s.q1, 26);
  EXPECT_DOUBLE_EQ(s.q3, 76);
  EXPECT_EQ(s.count, 101u);
}

TEST(Stats, CdfMonotoneAndBounds) {
  std::vector<double> v{3, 1, 4, 1, 5, 9, 2, 6};
  EmpiricalCdf cdf(v);
  EXPECT_DOUBLE_EQ(cdf.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(9.0), 1.0);
  double prev = -1;
  for (double x = 0; x <= 10; x += 0.25) {
    const double f = cdf.at(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Stats, CdfQuantileInvertsRoughly) {
  std::vector<double> v;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) v.push_back(rng.uniform());
  EmpiricalCdf cdf(v);
  EXPECT_NEAR(cdf.quantile(0.5), 0.5, 0.03);
  EXPECT_NEAR(cdf.quantile(0.9), 0.9, 0.03);
}

TEST(Stats, CdfSamplePoints) {
  std::vector<double> v{0, 1, 2, 3, 4};
  EmpiricalCdf cdf(v);
  const auto pts = cdf.sample_points(5);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts.front().first, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().first, 4.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(Stats, HistogramBinning) {
  Histogram h(0, 10, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100);  // clamps to first bin
  h.add(100);   // clamps to last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Stats, RunningStatsMatchesBatch) {
  std::vector<double> v{1.5, 2.5, 3.5, 10.0, -2.0};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 10.0);
}

TEST(Bytes, PrimitiveRoundtrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f32(3.25f);
  w.f64(-2.71828);
  w.str("hello");
  const Bytes b = w.take();

  ByteReader r(b);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_FLOAT_EQ(r.f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.f64(), -2.71828);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x04030201u);
  const Bytes b = w.take();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[1], 2);
  EXPECT_EQ(b[2], 3);
  EXPECT_EQ(b[3], 4);
}

TEST(Bytes, TruncationThrows) {
  ByteWriter w;
  w.u16(7);
  const Bytes b = w.take();
  ByteReader r(b);
  EXPECT_EQ(r.u16(), 7);
  EXPECT_THROW(r.u8(), DecodeError);
}

TEST(Bytes, BlobRoundtripAndTruncation) {
  ByteWriter w;
  const Bytes payload{1, 2, 3, 4, 5};
  w.blob(payload);
  Bytes b = w.take();
  {
    ByteReader r(b);
    const auto back = r.blob();
    EXPECT_TRUE(std::equal(back.begin(), back.end(), payload.begin()));
  }
  b.resize(b.size() - 2);  // truncate payload
  ByteReader r(b);
  EXPECT_THROW(r.blob(), DecodeError);
}

TEST(ThreadPool, ParallelForCoversAll) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SubmitRuns) {
  ThreadPool pool(2);
  std::atomic<int> x{0};
  auto f = pool.submit([&] { x = 42; });
  f.get();
  EXPECT_EQ(x.load(), 42);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// A parallel_for issued from inside one of the pool's own workers must run
// inline (a worker blocking on sub-tasks only workers can run would
// deadlock when every worker does it).
TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(4 * 16);
  pool.parallel_for(4, [&](std::size_t outer) {
    EXPECT_TRUE(pool.on_worker_thread());
    pool.parallel_for(16, [&](std::size_t inner) {
      hits[outer * 16 + inner]++;
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
}

TEST(Table, NumAndBytesFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::bytes_human(512), "512.0 B");
  EXPECT_EQ(Table::bytes_human(2048), "2.0 KB");
  EXPECT_EQ(Table::bytes_human(3.5 * 1024 * 1024), "3.5 MB");
}

}  // namespace
}  // namespace vp
