// End-to-end integration tests: full wardrive -> ingest -> client query ->
// localization, and full retrieval (render scenes, build database, match
// query views) — miniature versions of the paper's two evaluations.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/retrieval.hpp"
#include "core/server.hpp"
#include "core/session.hpp"
#include "features/sift.hpp"
#include "scene/environments.hpp"
#include "slam/map_merge.hpp"
#include "slam/mapping.hpp"

namespace vp {
namespace {

OracleConfig small_oracle() {
  OracleConfig cfg;
  cfg.capacity = 50'000;
  return cfg;
}

TEST(Integration, WardriveIngestLocalize) {
  Rng rng(1);
  GalleryConfig gc;
  gc.num_scenes = 6;
  gc.hall_length = 18;
  gc.hall_width = 6;
  gc.texture_px_per_m = 160;
  const World world = build_gallery(gc, rng);

  // Wardrive with mild drift and ICP correction.
  WardriveConfig wc;
  wc.intrinsics = {320, 240, 1.15192};
  wc.stop_spacing = 2.5;
  wc.lane_spacing = 4.0;
  wc.views_per_stop = 2;
  auto snaps = wardrive(world, wc, rng);
  ASSERT_GT(snaps.size(), 6u);
  const auto merged = merge_snapshots(snaps, {});
  const auto mappings = extract_mappings(snaps, merged.corrected_poses);
  ASSERT_GT(mappings.size(), 200u);

  ServerConfig sc;
  sc.oracle = small_oracle();
  Vec3 lo, hi;
  world.bounds(lo, hi);
  sc.localize.search_lo = lo;
  sc.localize.search_hi = hi;
  sc.localize.de.time_budget_sec = 0.5;
  sc.clustering.radius = 2.0;
  VisualPrintServer server(sc);
  server.ingest_wardrive(mappings);

  // Client: photograph a painting from a known pose and localize.
  ClientConfig cc;
  cc.top_k = 200;
  cc.blur_threshold = 1.0;
  VisualPrintClient client(cc);
  client.install_oracle(server.oracle_snapshot());

  const auto sq = scene_quads(world);
  int localized = 0, attempts = 0;
  std::vector<double> errors;
  for (int s = 0; s < 3; ++s) {
    Rng view_rng(100 + s);
    const Camera cam = view_of_quad(world, sq[static_cast<std::size_t>(s * 2)],
                                    wc.intrinsics, 10.0, 2.5, view_rng);
    RenderOptions ro;
    auto frame = render(world, cam, ro, view_rng);
    const auto result = client.process_frame(frame.image, 0.0, 0.0);
    if (result.status != FrameResult::Status::kQueued) continue;
    ++attempts;
    Rng solve_rng(200 + s);
    const auto resp = server.localize_query(*result.query, solve_rng);
    if (resp.found) {
      ++localized;
      errors.push_back(resp.position.distance(cam.pose.translation));
    }
  }
  ASSERT_GE(attempts, 2);
  EXPECT_GE(localized, attempts - 1);
  // Median error should be meters-scale, like the paper's 2.5 m median
  // (our miniature database is far sparser, so allow slack).
  ASSERT_FALSE(errors.empty());
  std::sort(errors.begin(), errors.end());
  EXPECT_LT(errors[errors.size() / 2], 6.0);
}

TEST(Integration, RetrievalBeatsRandomBaseline) {
  Rng rng(2);
  GalleryConfig gc;
  gc.num_scenes = 8;
  gc.hall_length = 24;
  gc.hall_width = 6;
  gc.texture_px_per_m = 160;
  const World world = build_gallery(gc, rng);
  const auto sq = scene_quads(world);
  CameraIntrinsics intr{320, 240, 1.15192};

  // Database: one frontal image per scene.
  SiftConfig sift;
  RetrievalConfig rc;
  rc.min_votes = 4;
  SceneDatabase db(rc);
  OracleConfig oc = small_oracle();
  UniquenessOracle oracle(oc);
  for (int s = 0; s < gc.num_scenes; ++s) {
    Rng view_rng(300 + s);
    const Camera cam = view_of_quad(world, sq[static_cast<std::size_t>(s)],
                                    intr, 0.0, 2.0, view_rng);
    auto frame = render(world, cam, {}, view_rng);
    const auto features = sift_detect(frame.image, sift);
    db.add_image(features, s);
    for (const auto& f : features) oracle.insert(f.descriptor);
  }
  ASSERT_GT(db.descriptor_count(), 200u);

  // Clients for the two policies share the same oracle.
  ClientConfig vp_cfg;
  vp_cfg.top_k = 60;
  VisualPrintClient vp_client(vp_cfg);
  vp_client.install_oracle(UniquenessOracle::deserialize(oracle.serialize()));

  ClientConfig rnd_cfg;
  rnd_cfg.policy = SelectionPolicy::kRandom;
  VisualPrintClient rnd_client(rnd_cfg);

  int vp_correct = 0, rnd_correct = 0, total = 0;
  for (int s = 0; s < gc.num_scenes; ++s) {
    Rng view_rng(400 + s);
    const Camera cam = view_of_quad(world, sq[static_cast<std::size_t>(s)],
                                    intr, 25.0, 2.2, view_rng);
    auto frame = render(world, cam, {}, view_rng);
    auto features = sift_detect(frame.image, sift);
    if (features.size() < 20) continue;
    ++total;
    const auto vp_sel = vp_client.select_features(features, 60);
    const auto rnd_sel = rnd_client.select_features(features, 60);
    const auto vp_pred = db.predict(vp_sel, MatcherKind::kLsh);
    const auto rnd_pred = db.predict(rnd_sel, MatcherKind::kLsh);
    vp_correct += vp_pred && *vp_pred == s;
    rnd_correct += rnd_pred && *rnd_pred == s;
  }
  ASSERT_GE(total, 5);
  EXPECT_GE(vp_correct, rnd_correct);
  EXPECT_GE(vp_correct, total / 2);
}

TEST(Integration, SessionProducesTimeline) {
  Rng rng(3);
  GalleryConfig gc;
  gc.num_scenes = 4;
  gc.hall_length = 14;
  gc.hall_width = 6;
  const World world = build_gallery(gc, rng);

  ServerConfig sc;
  sc.oracle = small_oracle();
  VisualPrintServer server(sc);
  // Minimal ingest so the oracle has content.
  WardriveConfig wc;
  wc.intrinsics = {160, 120, 1.15192};
  wc.stop_spacing = 4.0;
  wc.lane_spacing = 4.0;
  wc.views_per_stop = 1;
  auto snaps = wardrive(world, wc, rng);
  std::vector<Pose> poses;
  for (const auto& s : snaps) poses.push_back(s.reported_pose);
  server.ingest_wardrive(extract_mappings(snaps, poses));
  ASSERT_GT(server.keypoint_count(), 50u);

  SessionConfig cfg;
  cfg.duration_s = 6.0;
  cfg.camera_fps = 3.0;
  cfg.intrinsics = {320, 240, 1.15192};
  cfg.client.top_k = 100;
  cfg.client.blur_threshold = 2.0;
  cfg.localize_on_server = false;  // keep the test fast
  cfg.phone_slowdown = 1.0;
  Session session(world, server, cfg);
  const auto stats = session.run();

  EXPECT_GT(stats.frames.size(), 10u);
  EXPECT_GT(stats.total_upload_bytes, 0u);
  EXPECT_EQ(stats.activity.size(), 6u);
  // Queued frames carry top-k-bounded payloads.
  for (const auto& f : stats.frames) {
    if (f.status == FrameResult::Status::kQueued) {
      EXPECT_LE(f.selected_keypoints, 100u);
      EXPECT_GT(f.payload_bytes, 0u);
    }
  }
  const auto curve = stats.cumulative_upload();
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
}

TEST(Integration, SessionCollectsStitchedTraces) {
  Rng rng(4);
  GalleryConfig gc;
  gc.num_scenes = 4;
  gc.hall_length = 14;
  gc.hall_width = 6;
  const World world = build_gallery(gc, rng);

  ServerConfig sc;
  sc.oracle = small_oracle();
  world.bounds(sc.localize.search_lo, sc.localize.search_hi);
  sc.localize.de.time_budget_sec = 0.05;  // traces, not fixes, are under test
  VisualPrintServer server(sc);
  WardriveConfig wc;
  wc.intrinsics = {160, 120, 1.15192};
  wc.stop_spacing = 4.0;
  wc.lane_spacing = 4.0;
  wc.views_per_stop = 1;
  auto snaps = wardrive(world, wc, rng);
  std::vector<Pose> poses;
  for (const auto& s : snaps) poses.push_back(s.reported_pose);
  server.ingest_wardrive(extract_mappings(snaps, poses));

  SessionConfig cfg;
  cfg.duration_s = 3.0;
  cfg.camera_fps = 2.0;
  cfg.intrinsics = {320, 240, 1.15192};
  cfg.client.top_k = 100;
  cfg.client.blur_threshold = 2.0;
  cfg.localize_on_server = true;
  cfg.collect_traces = true;
  cfg.phone_slowdown = 1.0;
  Session session(world, server, cfg);
  const auto stats = session.run();

  std::size_t queued = 0;
  for (const auto& f : stats.frames) {
    queued += f.status == FrameResult::Status::kQueued;
  }
  ASSERT_GT(queued, 0u);
  // One stitched trace per offloaded frame, on the session clock.
  ASSERT_EQ(stats.traces.size(), queued);
  for (const auto& st : stats.traces) {
    EXPECT_NE(st.trace_id, 0u);
    EXPECT_GE(st.base_ms, 0.0);
    ASSERT_EQ(st.link.size(), 2u);  // queue_wait + transfer
    EXPECT_EQ(st.link[0].name, "queue_wait");
    EXPECT_EQ(st.link[1].name, "transfer");
    // The simulated transfer starts no earlier than it was queued.
    EXPECT_GE(st.link[1].start_ms, st.link[0].start_ms - 1e-9);
#if VP_OBS_ENABLED
    EXPECT_FALSE(st.client.empty());
    EXPECT_FALSE(st.server.empty());
    // Server work is placed at delivery: after the transfer completes.
    for (const auto& s : st.server) {
      EXPECT_GE(s.start_ms, st.link[1].start_ms - 1e-9);
    }
#endif
  }

  // Trace ids derive from the session seed: a rerun stitches the same ids.
  Session rerun(world, server, cfg);
  const auto stats2 = rerun.run();
  ASSERT_EQ(stats2.traces.size(), stats.traces.size());
  for (std::size_t i = 0; i < stats.traces.size(); ++i) {
    EXPECT_EQ(stats2.traces[i].trace_id, stats.traces[i].trace_id);
  }
}

TEST(Integration, FrameModeSkipsClientVision) {
  // Whole-frame offload must not run SIFT or require an oracle, and every
  // non-stale frame ships.
  Rng rng(9);
  GalleryConfig gc;
  gc.num_scenes = 3;
  gc.hall_length = 12;
  gc.hall_width = 6;
  const World world = build_gallery(gc, rng);
  ServerConfig sc;
  sc.oracle = small_oracle();
  VisualPrintServer server(sc);

  SessionConfig cfg;
  cfg.duration_s = 3.0;
  cfg.camera_fps = 3.0;
  cfg.intrinsics = {320, 240, 1.15192};
  cfg.mode = OffloadMode::kFrameJpeg;
  cfg.localize_on_server = false;
  cfg.phone_slowdown = 1.0;
  Session session(world, server, cfg);
  const auto stats = session.run();

  std::size_t sent = 0;
  for (const auto& f : stats.frames) {
    if (f.status == FrameResult::Status::kQueued) {
      ++sent;
      EXPECT_EQ(f.total_keypoints, 0u);    // no SIFT ran
      EXPECT_EQ(f.phone_sift_ms(), 0.0);
      EXPECT_GT(f.payload_bytes, 500u);    // a real JPEG payload
    }
  }
  EXPECT_GT(sent, 4u);
}

TEST(Integration, VisualPrintUploadsFarLessThanFrames) {
  // The headline claim (Fig. 14): order-of-magnitude less upload.
  Rng rng(4);
  GalleryConfig gc;
  gc.num_scenes = 3;
  gc.hall_length = 12;
  gc.hall_width = 6;
  const World world = build_gallery(gc, rng);
  ServerConfig sc;
  sc.oracle = small_oracle();
  VisualPrintServer server(sc);
  WardriveConfig wc;
  wc.intrinsics = {160, 120, 1.15192};
  wc.stop_spacing = 5.0;
  wc.lane_spacing = 5.0;
  wc.views_per_stop = 1;
  auto snaps = wardrive(world, wc, rng);
  std::vector<Pose> poses;
  for (const auto& s : snaps) poses.push_back(s.reported_pose);
  server.ingest_wardrive(extract_mappings(snaps, poses));

  auto run_mode = [&](OffloadMode mode) {
    SessionConfig cfg;
    cfg.duration_s = 5.0;
    cfg.camera_fps = 2.0;
    cfg.intrinsics = {320, 240, 1.15192};
    cfg.mode = mode;
    cfg.client.top_k = 150;
    cfg.client.blur_threshold = 2.0;
    cfg.localize_on_server = false;
    cfg.phone_slowdown = 1.0;
    Session session(world, server, cfg);
    return session.run().total_upload_bytes;
  };
  const std::size_t vp_bytes = run_mode(OffloadMode::kVisualPrint);
  const std::size_t png_bytes = run_mode(OffloadMode::kFramePng);
  ASSERT_GT(vp_bytes, 0u);
  EXPECT_GT(png_bytes, vp_bytes * 3);
}

}  // namespace
}  // namespace vp
