// Fault-tolerance battery for the client<->server link: the RetryingClient
// retry/backoff contract, the FaultProxy injection shim, per-connection
// deadlines freeing serve() workers, and the multi-client soak that drives
// the full stack (RetryingClient -> FaultProxy -> TcpListener::serve on a
// ThreadPool) through seeded fault storms. Everything here is
// deterministic: proxy fault sequences derive from FaultConfig::seed and
// all sleeps are injected or bounded by socket deadlines.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "net/fault.hpp"
#include "net/retry.hpp"
#include "net/tcp.hpp"
#include "net/wire.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

/// An echo server on an ephemeral port, serving until destruction.
class EchoServer {
 public:
  explicit EchoServer(TcpListener::Handler handler, ThreadPool* pool = nullptr,
                      int io_timeout_ms = 2000)
      : listener_(0) {
    ServeOptions options;
    options.pool = pool;
    options.max_connections = 8;
    options.io_timeout_ms = io_timeout_ms;
    options.poll_interval_ms = 10;
    thread_ = std::thread([this, handler = std::move(handler), options] {
      listener_.serve(handler, [this] { return run_.load(); }, options,
                      &stats_);
    });
  }

  ~EchoServer() {
    run_.store(false);
    thread_.join();
  }

  std::uint16_t port() const noexcept { return listener_.port(); }
  const ServeStats& stats() const noexcept { return stats_; }

 private:
  TcpListener listener_;
  ServeStats stats_;
  std::atomic<bool> run_{true};
  std::thread thread_;
};

RetryPolicy fast_policy(int attempts, int io_timeout_ms = 2000) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.backoff_ms = 1.0;
  p.max_backoff_ms = 5.0;
  p.io_timeout_ms = io_timeout_ms;
  p.connect_timeout_ms = 2000;
  return p;
}

TEST(Faults, UniformConfigSpreadsRateAcrossFaultKinds) {
  const FaultConfig cfg = FaultConfig::uniform(0.25, 7);
  EXPECT_DOUBLE_EQ(cfg.sever, 0.05);
  EXPECT_DOUBLE_EQ(cfg.drop, 0.05);
  EXPECT_DOUBLE_EQ(cfg.truncate, 0.05);
  EXPECT_DOUBLE_EQ(cfg.corrupt, 0.05);
  EXPECT_DOUBLE_EQ(cfg.duplicate, 0.05);
  EXPECT_DOUBLE_EQ(cfg.delay, 0.0);
  EXPECT_EQ(cfg.seed, 7u);
}

TEST(Faults, BackoffGrowsGeometricallyAndStaysBounded) {
  RetryPolicy p;
  p.backoff_ms = 25.0;
  p.backoff_factor = 2.0;
  p.max_backoff_ms = 1000.0;
  p.jitter = 0.25;
  RetryingClient client("127.0.0.1", 1, p);

  // unit_jitter 0.5 is the jitter midpoint: the nominal delay.
  EXPECT_DOUBLE_EQ(client.backoff_for(1, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(client.backoff_for(2, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(client.backoff_for(3, 0.5), 100.0);
  // Capped: 25 * 2^9 would be 12.8 s.
  EXPECT_DOUBLE_EQ(client.backoff_for(10, 0.5), 1000.0);
  // Jitter bounds: +/- 25% around the nominal delay.
  EXPECT_DOUBLE_EQ(client.backoff_for(1, 0.0), 25.0 * 0.75);
  EXPECT_DOUBLE_EQ(client.backoff_for(1, 1.0), 25.0 * 1.25);
  for (int retry = 1; retry <= 12; ++retry) {
    EXPECT_LE(client.backoff_for(retry, 1.0), 1000.0 * 1.25);
    EXPECT_GE(client.backoff_for(retry, 0.0), 25.0 * 0.75);
  }
}

TEST(Faults, PassthroughProxyIsTransparent) {
  EchoServer server([](std::span<const std::uint8_t> req) {
    return Bytes(req.begin(), req.end());
  });
  FaultProxy proxy(server.port(), FaultConfig{});  // all probabilities zero

  RetryingClient client("127.0.0.1", proxy.port(), fast_policy(3));
  for (std::uint8_t i = 0; i < 10; ++i) {
    const Bytes payload{i, 0x10, 0x20};
    EXPECT_EQ(client.request(payload), payload);
  }
  EXPECT_EQ(client.stats().attempts, 10u);
  EXPECT_EQ(client.stats().retries, 0u);
  EXPECT_EQ(client.stats().reconnects, 1u);

  client.close();
  proxy.stop();
  EXPECT_EQ(proxy.stats().faults(), 0u);
  EXPECT_EQ(proxy.stats().messages.load(), 20u);  // 10 requests + 10 replies
  EXPECT_EQ(proxy.stats().sessions.load(), 1u);
}

TEST(Faults, RetryReconnectsAndResendsAfterServerDrop) {
  TcpListener listener(0);
  std::thread server([&] {
    // First connection: read the request, hang up without answering.
    Socket first = listener.accept_one();
    Bytes msg;
    ASSERT_TRUE(first.recv_message(msg));
    first.close();
    // Second connection: behave.
    Socket second = listener.accept_one();
    ASSERT_TRUE(second.recv_message(msg));
    second.send_message(msg);
  });

  RetryingClient client("127.0.0.1", listener.port(), fast_policy(3));
  std::vector<double> slept;
  client.set_sleep_fn([&](double ms) { slept.push_back(ms); });

  const Bytes payload{1, 2, 3};
  EXPECT_EQ(client.request(payload), payload);
  EXPECT_EQ(client.stats().attempts, 2u);
  EXPECT_EQ(client.stats().retries, 1u);
  EXPECT_EQ(client.stats().conn_dropped, 1u);
  EXPECT_EQ(client.stats().reconnects, 2u);
  ASSERT_EQ(slept.size(), 1u);
  EXPECT_GT(slept[0], 0.0);
  server.join();
}

TEST(Faults, TimeoutsExhaustAttemptsAndThrow) {
  TcpListener listener(0);
  std::thread server([&] {
    for (int i = 0; i < 2; ++i) {
      // Swallow the request, never answer; wait for the client to give up.
      Socket conn = listener.accept_one();
      Bytes msg;
      ASSERT_TRUE(conn.recv_message(msg));
      EXPECT_FALSE(conn.recv_message(msg));  // client closes on timeout
    }
  });

  RetryingClient client("127.0.0.1", listener.port(),
                        fast_policy(2, /*io_timeout_ms=*/100));
  std::vector<double> slept;
  client.set_sleep_fn([&](double ms) { slept.push_back(ms); });

  EXPECT_THROW(client.request(Bytes{9}), TimeoutError);
  EXPECT_EQ(client.stats().attempts, 2u);
  EXPECT_EQ(client.stats().timeouts, 2u);
  EXPECT_EQ(client.stats().retries, 1u);
  EXPECT_EQ(slept.size(), 1u);
  server.join();
}

TEST(Faults, HandlerFailureSurfacesAsRemoteErrorWithoutRetry) {
  EchoServer server([](std::span<const std::uint8_t>) -> Bytes {
    throw std::runtime_error("solver exploded");
  });
  RetryingClient client("127.0.0.1", server.port(), fast_policy(4));
  try {
    client.request(Bytes{1});
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorResponse::kHandlerFailure);
    EXPECT_NE(std::string(e.what()).find("solver exploded"), std::string::npos);
  }
  // Handler failures are not transport faults: no retries burned.
  EXPECT_EQ(client.stats().attempts, 1u);
  EXPECT_EQ(client.stats().remote_errors, 1u);
  EXPECT_EQ(client.stats().retries, 0u);
}

TEST(Faults, BadRequestIsRetriedOnTheSameConnection) {
  EchoServer server([](std::span<const std::uint8_t>) -> Bytes {
    throw DecodeError{"cannot parse"};
  });
  RetryingClient client("127.0.0.1", server.port(), fast_policy(3));
  client.set_sleep_fn([](double) {});

  EXPECT_THROW(client.request(Bytes{1}), IoError);
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().remote_errors, 3u);
  EXPECT_EQ(client.stats().retries, 2u);
  // kBadRequest means the *request* was bad, not the connection: the
  // resends reuse the socket instead of reconnecting.
  EXPECT_EQ(client.stats().reconnects, 1u);
}

TEST(Faults, OverloadedRepliesAreRetriedWithBackoffOnTheSameConnection) {
  // Scripted shedding server: the first two replies are structured
  // kOverloaded, then the request is echoed — the shape of a server whose
  // admission gate drains between a client's attempts.
  std::atomic<int> calls{0};
  EchoServer server([&](std::span<const std::uint8_t> req) -> Bytes {
    if (calls.fetch_add(1) < 2) {
      ErrorResponse err;
      err.code = ErrorResponse::kOverloaded;
      err.message = "busy";
      return err.encode();
    }
    return Bytes(req.begin(), req.end());
  });

  RetryPolicy p;
  p.max_attempts = 5;
  p.backoff_ms = 25.0;
  p.backoff_factor = 2.0;
  p.max_backoff_ms = 1000.0;
  p.jitter = 0.25;
  p.io_timeout_ms = 2000;
  p.connect_timeout_ms = 2000;
  RetryingClient client("127.0.0.1", server.port(), p, /*seed=*/3);
  std::vector<double> slept;
  client.set_sleep_fn([&](double ms) { slept.push_back(ms); });

  const Bytes payload{0x42, 0x43};
  EXPECT_EQ(client.request(payload), payload);

  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().overloaded, 2u);
  EXPECT_EQ(client.stats().remote_errors, 2u);
  // A shed reply was read in full off a healthy connection: the resends
  // reuse the socket instead of reconnecting.
  EXPECT_EQ(client.stats().reconnects, 1u);
  // The backoff schedule was honored and grows: with jitter 0.25 the first
  // delay lies in [18.75, 31.25] and the second in [37.5, 62.5] — disjoint
  // ranges, so growth is strict, not probabilistic.
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_GE(slept[0], 25.0 * 0.75);
  EXPECT_LE(slept[0], 25.0 * 1.25);
  EXPECT_GE(slept[1], 50.0 * 0.75);
  EXPECT_LE(slept[1], 50.0 * 1.25);
  EXPECT_GT(slept[1], slept[0]);
}

TEST(Faults, PersistentOverloadExhaustsAttemptsAndSurfacesTheCode) {
  EchoServer server([](std::span<const std::uint8_t>) -> Bytes {
    ErrorResponse err;
    err.code = ErrorResponse::kOverloaded;
    err.message = "always full";
    return err.encode();
  });
  RetryingClient client("127.0.0.1", server.port(), fast_policy(3));
  client.set_sleep_fn([](double) {});

  try {
    client.request(Bytes{0x01});
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    // Exhaustion keeps the structured code so callers can distinguish "the
    // server kept shedding me" from a transport failure.
    EXPECT_EQ(e.code(), ErrorResponse::kOverloaded);
  }
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().overloaded, 3u);
}

TEST(Faults, OverloadRetryCanBeDisabledForMeasurementClients) {
  EchoServer server([](std::span<const std::uint8_t>) -> Bytes {
    ErrorResponse err;
    err.code = ErrorResponse::kOverloaded;
    err.message = "shed";
    return err.encode();
  });
  RetryPolicy p = fast_policy(5);
  p.retry_overloaded = false;  // a load generator counts sheds, not hides them
  RetryingClient client("127.0.0.1", server.port(), p);

  try {
    client.request(Bytes{0x02});
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorResponse::kOverloaded);
  }
  EXPECT_EQ(client.stats().attempts, 1u);  // surfaced immediately
  EXPECT_EQ(client.stats().overloaded, 1u);
}

TEST(Faults, StalledClientCannotWedgeAWorker) {
  ThreadPool pool(1);  // a single worker the stalled client could hog
  EchoServer server(
      [](std::span<const std::uint8_t> req) {
        return Bytes(req.begin(), req.end());
      },
      &pool, /*io_timeout_ms=*/200);

  // Connect and send nothing: this occupies the only worker until its
  // recv deadline fires.
  Socket stalled = tcp_connect("127.0.0.1", server.port());

  // A well-behaved client must still get service (after at most the
  // stalled connection's deadline).
  RetryingClient client("127.0.0.1", server.port(), fast_policy(3));
  const Bytes payload{0xAB, 0xCD};
  EXPECT_EQ(client.request(payload), payload);

  // The stalled connection's deadline must fire and be counted.
  for (int i = 0; i < 100 && server.stats().timeouts.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.stats().timeouts.load(), 1u);
  stalled.close();
}

TEST(Faults, ConnectionsAreServicedConcurrently) {
  // Three handlers must be in flight at once for any to answer: a serial
  // server would stall until the per-socket deadline and fail the test.
  constexpr int kClients = 3;
  std::mutex m;
  std::condition_variable cv;
  int arrived = 0;
  ThreadPool pool(kClients);
  EchoServer server(
      [&](std::span<const std::uint8_t> req) {
        std::unique_lock lock(m);
        ++arrived;
        cv.notify_all();
        if (!cv.wait_for(lock, std::chrono::seconds(10),
                         [&] { return arrived >= kClients; })) {
          throw std::runtime_error("handlers never overlapped");
        }
        return Bytes(req.begin(), req.end());
      },
      &pool, /*io_timeout_ms=*/30'000);

  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Socket sock = tcp_connect("127.0.0.1", server.port());
      const Bytes payload{static_cast<std::uint8_t>(c)};
      sock.send_message(payload);
      Bytes reply;
      ASSERT_TRUE(sock.recv_message(reply));
      ASSERT_FALSE(is_error_frame(reply));
      EXPECT_EQ(reply, payload);
      ++ok;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients);
}

// The ISSUE acceptance soak: N client threads x M requests through the
// FaultProxy at a >= 10% uniform fault rate against a concurrently-serving
// in-process server. Every request must eventually be answered correctly;
// nothing may crash, leak a worker, or desynchronize.
TEST(Faults, MultiClientSoakAbsorbsInjectedFaults) {
  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  constexpr std::uint32_t kReqMagic = 0xFEEDFACEu;
  constexpr std::uint32_t kRespMagic = 0xCAFEBABEu;

  // Request: magic u32 + id u32. Response: response magic + same id.
  ThreadPool pool(4);
  EchoServer server(
      [&](std::span<const std::uint8_t> req) {
        ByteReader r(req);
        if (r.u32() != kReqMagic) throw DecodeError{"bad soak magic"};
        const std::uint32_t id = r.u32();
        ByteWriter w;
        w.u32(kRespMagic);
        w.u32(id);
        return w.take();
      },
      &pool, /*io_timeout_ms=*/2000);

  FaultProxy proxy(server.port(), FaultConfig::uniform(0.15, 20260805));

  std::atomic<int> answered{0};
  std::atomic<std::uint64_t> total_attempts{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      RetryPolicy policy = fast_policy(8, /*io_timeout_ms=*/250);
      RetryingClient net("127.0.0.1", proxy.port(), policy,
                         /*seed=*/100 + static_cast<std::uint64_t>(c));
      for (int q = 0; q < kRequests; ++q) {
        const std::uint32_t id =
            (static_cast<std::uint32_t>(c) << 16) | static_cast<std::uint32_t>(q);
        ByteWriter w;
        w.u32(kReqMagic);
        w.u32(id);
        const Bytes payload = w.take();
        // Transport retries live inside RetryingClient; this outer loop
        // covers what no transport can: a corrupted message that still
        // parsed (wrong id) or a fault storm outlasting one policy budget.
        bool got = false;
        for (int round = 0; round < 10 && !got; ++round) {
          try {
            const Bytes reply = net.request(payload);
            ByteReader r(reply);
            got = r.u32() == kRespMagic && r.u32() == id;
          } catch (const Error&) {
            // exhausted one retry budget; go again
          }
        }
        if (got) ++answered;
      }
      total_attempts += net.stats().attempts;
    });
  }
  for (auto& t : clients) t.join();
  proxy.stop();

  EXPECT_EQ(answered.load(), kClients * kRequests);
  // The storm actually happened and the counters stayed coherent.
  EXPECT_GT(proxy.stats().faults(), 0u);
  EXPECT_GE(proxy.stats().sessions.load(), 1u);
  EXPECT_GE(total_attempts.load(),
            static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_GE(server.stats().responses.load(),
            static_cast<std::uint64_t>(kClients * kRequests));
  // Only the proxy dials the server, once per session (a backlogged dial
  // the accept loop has not reached yet may still be in flight).
  EXPECT_LE(server.stats().accepted.load(), proxy.stats().sessions.load());
}

}  // namespace
}  // namespace vp
