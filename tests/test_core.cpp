#include <gtest/gtest.h>

#include <filesystem>

#include "core/client.hpp"
#include "core/retrieval.hpp"
#include "core/server.hpp"
#include "core/session.hpp"
#include "scene/texture.hpp"
#include "util/rng.hpp"

namespace vp {
namespace {

Descriptor random_descriptor(Rng& rng) {
  Descriptor d;
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.uniform_u64(80));
  return d;
}

Feature make_feature(Rng& rng, float x = 10, float y = 10) {
  Feature f;
  f.keypoint = {x, y, 2.0f, 0.0f, 1.0f, 0};
  f.descriptor = random_descriptor(rng);
  return f;
}

OracleConfig small_oracle() {
  OracleConfig cfg;
  cfg.capacity = 20'000;
  return cfg;
}

ServerConfig small_server() {
  ServerConfig cfg;
  cfg.oracle = small_oracle();
  return cfg;
}

TEST(Client, RequiresOracleForUniqueSelection) {
  ClientConfig cfg;
  cfg.top_k = 5;
  VisualPrintClient client(cfg);
  Rng rng(1);
  std::vector<Feature> fs;
  for (int i = 0; i < 10; ++i) fs.push_back(make_feature(rng));
  EXPECT_THROW(client.select_features(fs, 5), InvalidArgument);
}

TEST(Client, SelectsMostUniqueFirst) {
  UniquenessOracle oracle(small_oracle());
  Rng rng(2);
  // Common descriptor: inserted many times; unique: once.
  const Feature common = make_feature(rng);
  const Feature unique = make_feature(rng);
  for (int i = 0; i < 40; ++i) oracle.insert(common.descriptor);
  oracle.insert(unique.descriptor);

  ClientConfig cfg;
  cfg.top_k = 1;
  VisualPrintClient client(cfg);
  client.install_oracle(std::move(oracle));
  const auto picked = client.select_features({common, unique}, 1);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0].descriptor, unique.descriptor);
}

TEST(Client, RandomPolicyDeterministicPerSeed) {
  ClientConfig cfg;
  cfg.policy = SelectionPolicy::kRandom;
  VisualPrintClient a(cfg, 7), b(cfg, 7);
  Rng rng(3);
  std::vector<Feature> fs;
  for (int i = 0; i < 30; ++i) fs.push_back(make_feature(rng));
  const auto sa = a.select_features(fs, 10);
  const auto sb = b.select_features(fs, 10);
  ASSERT_EQ(sa.size(), 10u);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].descriptor, sb[i].descriptor);
  }
}

TEST(Client, AllPolicyKeepsEverything) {
  ClientConfig cfg;
  cfg.policy = SelectionPolicy::kAll;
  VisualPrintClient client(cfg);
  Rng rng(4);
  std::vector<Feature> fs;
  for (int i = 0; i < 30; ++i) fs.push_back(make_feature(rng));
  EXPECT_EQ(client.select_features(fs, 10).size(), 30u);
}

TEST(Client, BlurGateRejects) {
  ClientConfig cfg;
  cfg.blur_threshold = 50.0;
  VisualPrintClient client(cfg);
  const ImageF flat(64, 64, 1, 128.0f);  // zero Laplacian variance
  const auto result = client.process_frame(flat, 0.0, 0.0);
  EXPECT_EQ(result.status, FrameResult::Status::kBlurRejected);
  EXPECT_FALSE(result.query.has_value());
}

TEST(Client, StaleFrameRejectedBeforeWork) {
  ClientConfig cfg;
  cfg.stale_frame_budget_s = 0.1;
  VisualPrintClient client(cfg);
  const ImageF frame(64, 64, 1, 128.0f);
  const auto result = client.process_frame(frame, 0.0, 5.0);
  EXPECT_EQ(result.status, FrameResult::Status::kStale);
  EXPECT_EQ(result.sift_ms, 0.0);
}

TEST(Client, ProcessFrameProducesQuery) {
  ClientConfig cfg;
  cfg.top_k = 50;
  cfg.blur_threshold = 1.0;
  VisualPrintClient client(cfg);
  client.install_oracle(UniquenessOracle(small_oracle()));
  Rng rng(5);
  const ImageF frame = painting_texture(200, 150, rng);
  const auto result = client.process_frame(frame, 1.0, 1.0);
  ASSERT_EQ(result.status, FrameResult::Status::kQueued);
  ASSERT_TRUE(result.query.has_value());
  EXPECT_GT(result.total_keypoints, 0u);
  EXPECT_LE(result.query->features.size(), 50u);
  EXPECT_EQ(result.query->image_width, 200);
  EXPECT_GT(result.sift_ms, 0.0);
}

TEST(Server, IngestAndOracleGrow) {
  VisualPrintServer server(small_server());
  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    server.ingest(make_feature(rng), {1.0 * i, 0, 1}, i % 3, 0);
  }
  EXPECT_EQ(server.keypoint_count(), 10u);
  EXPECT_EQ(server.oracle().insertions(), 10u);
  EXPECT_EQ(server.scene_count(), 3);
}

TEST(Server, SceneVotesFavorMatchingScene) {
  VisualPrintServer server(small_server());
  Rng rng(7);
  std::vector<Feature> scene_a, scene_b;
  for (int i = 0; i < 20; ++i) {
    scene_a.push_back(make_feature(rng));
    scene_b.push_back(make_feature(rng));
    server.ingest(scene_a.back(), {0, 0, 0}, 0, 0);
    server.ingest(scene_b.back(), {5, 0, 0}, 1, 0);
  }
  const auto votes = server.scene_votes(scene_a);
  ASSERT_EQ(votes.size(), 2u);
  EXPECT_GT(votes[0], votes[1] + 10);
}

TEST(Server, LocalizeQueryRecoversPosition) {
  ServerConfig cfg = small_server();
  cfg.localize.search_lo = {-10, -10, 0};
  cfg.localize.search_hi = {10, 10, 3};
  cfg.localize.de.time_budget_sec = 1.0;
  cfg.clustering.radius = 5.0;
  VisualPrintServer server(cfg);

  // Ground truth: camera at known pose looking at landmarks; ingest the
  // landmarks, then query with their projections.
  CameraIntrinsics intr{640, 480, 1.15};
  const Pose cam_pose = Pose::from_euler({2, 3, 1.5}, 0.3, 0, 0);
  Rng rng(8);
  FingerprintQuery q;
  q.image_width = 640;
  q.image_height = 480;
  q.fov_h = 1.15f;
  for (int i = 0; i < 25; ++i) {
    const Vec3 body{rng.uniform(-1.5, 1.5), rng.uniform(-1.0, 1.0),
                    rng.uniform(2.0, 6.0)};
    const auto px = intr.project(body);
    if (!px) continue;
    Feature f = make_feature(rng, static_cast<float>(px->x),
                             static_cast<float>(px->y));
    server.ingest(f, cam_pose.to_world(body), 0, 0);
    q.features.push_back(f);
  }
  ASSERT_GE(q.features.size(), 10u);
  Rng solve_rng(9);
  const LocationResponse resp = server.localize_query(q, solve_rng);
  ASSERT_TRUE(resp.found);
  EXPECT_LT(resp.position.distance({2, 3, 1.5}), 0.5);
}

TEST(Server, LocalizeFailsWithNoMatches) {
  VisualPrintServer server(small_server());
  Rng rng(10);
  FingerprintQuery q;
  q.features.push_back(make_feature(rng));
  Rng solve_rng(11);
  EXPECT_FALSE(server.localize_query(q, solve_rng).found);
}

TEST(Server, OracleSnapshotInstallsOnClient) {
  VisualPrintServer server(small_server());
  Rng rng(12);
  const Feature f = make_feature(rng);
  for (int i = 0; i < 5; ++i) server.ingest(f, {0, 0, 0}, 0, 0);
  const auto snapshot = server.oracle_snapshot();

  VisualPrintClient client({});
  client.install_oracle(snapshot);
  ASSERT_TRUE(client.has_oracle());
  EXPECT_GE(client.oracle()->count(f.descriptor), 4u);
}

TEST(Server, OracleDiffRefreshFlow) {
  // First launch: full download. Later: the server ingests more content
  // and ships only an XOR diff; the refreshed client must score the new
  // content exactly like a fresh full download would.
  VisualPrintServer server(small_server());
  Rng rng(21);
  const Feature early = make_feature(rng);
  for (int i = 0; i < 5; ++i) server.ingest(early, {0, 0, 0}, 0, 0);

  VisualPrintClient client({});
  client.install_oracle(server.oracle_snapshot());
  const Bytes base_blob = client.oracle_blob();

  const Feature late = make_feature(rng);
  for (int i = 0; i < 7; ++i) server.ingest(late, {1, 0, 0}, 0, 0);
  EXPECT_EQ(client.oracle()->count(late.descriptor), 0u);  // stale copy

  const OracleDiff diff = server.oracle_diff_from(base_blob);
  client.apply_oracle_diff(diff);
  EXPECT_GE(client.oracle()->count(late.descriptor), 6u);
  EXPECT_GE(client.oracle()->count(early.descriptor), 4u);

  // The diff should be cheaper than a fresh full download.
  EXPECT_LT(diff.compressed_xor.size(),
            server.oracle_snapshot().compressed.size() + 1024);
}

TEST(Server, SaveLoadRoundtrip) {
  namespace fs = std::filesystem;
  ServerConfig cfg = small_server();
  cfg.place_label = "persistence test";
  VisualPrintServer server(cfg);
  Rng rng(31);
  std::vector<Feature> feats;
  for (int i = 0; i < 30; ++i) {
    feats.push_back(make_feature(rng));
    server.ingest(feats.back(), {1.0 * i, 2.0, 0.5}, i % 4, 9);
  }
  const auto path = (fs::temp_directory_path() / "vp_server_test.db").string();
  server.save(path);
  VisualPrintServer loaded = VisualPrintServer::load(path);
  fs::remove(path);

  EXPECT_EQ(loaded.keypoint_count(), 30u);
  EXPECT_EQ(loaded.scene_count(), 4);
  EXPECT_EQ(loaded.oracle().insertions(), 30u);
  // Stored metadata survives.
  EXPECT_DOUBLE_EQ(loaded.stored(7).position.x, 7.0);
  EXPECT_EQ(loaded.stored(7).scene_id, 3);
  // The rebuilt index answers queries identically.
  const auto votes = loaded.scene_votes(feats);
  EXPECT_EQ(votes, server.scene_votes(feats));
  // The oracle scores identically.
  for (const auto& f : feats) {
    EXPECT_EQ(loaded.oracle().count(f.descriptor),
              server.oracle().count(f.descriptor));
  }
}

TEST(Server, LoadRejectsCorruptFile) {
  ServerConfig cfg = small_server();
  VisualPrintServer server(cfg);
  Rng rng(32);
  server.ingest(make_feature(rng), {0, 0, 0}, 0, 0);
  Bytes blob = server.serialize();
  blob[1] ^= 0xFF;
  EXPECT_THROW(VisualPrintServer::deserialize(blob), DecodeError);
  blob[1] ^= 0xFF;
  blob.resize(blob.size() / 2);
  EXPECT_THROW(VisualPrintServer::deserialize(blob), DecodeError);
}

TEST(Client, DiffWithoutOracleThrows) {
  VisualPrintClient client({});
  OracleDiff diff;
  EXPECT_THROW(client.apply_oracle_diff(diff), InvalidArgument);
}

TEST(Retrieval, PredictsCorrectScene) {
  RetrievalConfig cfg;
  cfg.min_votes = 3;
  SceneDatabase db(cfg);
  Rng rng(13);
  std::vector<std::vector<Feature>> scenes;
  for (int s = 0; s < 4; ++s) {
    std::vector<Feature> fs;
    for (int i = 0; i < 25; ++i) fs.push_back(make_feature(rng));
    db.add_image(fs, s);
    scenes.push_back(std::move(fs));
  }
  for (int s = 0; s < 4; ++s) {
    for (auto kind : {MatcherKind::kLsh, MatcherKind::kBruteForce}) {
      const auto pred = db.predict(scenes[static_cast<std::size_t>(s)], kind);
      ASSERT_TRUE(pred.has_value());
      EXPECT_EQ(*pred, s);
    }
  }
}

TEST(Retrieval, AbstainsOnForeignQuery) {
  RetrievalConfig cfg;
  cfg.min_votes = 3;
  SceneDatabase db(cfg);
  Rng rng(14);
  std::vector<Feature> fs;
  for (int i = 0; i < 25; ++i) fs.push_back(make_feature(rng));
  db.add_image(fs, 0);
  std::vector<Feature> foreign;
  for (int i = 0; i < 25; ++i) foreign.push_back(make_feature(rng));
  EXPECT_FALSE(db.predict(foreign, MatcherKind::kBruteForce).has_value());
}

TEST(Retrieval, DistractorsGetNoVotes) {
  SceneDatabase db{RetrievalConfig{}};
  Rng rng(15);
  std::vector<Feature> distractor;
  for (int i = 0; i < 25; ++i) distractor.push_back(make_feature(rng));
  db.add_image(distractor, -1);  // distractor label
  EXPECT_EQ(db.scene_count(), 0);
  const auto votes = db.votes(distractor, MatcherKind::kLsh);
  EXPECT_TRUE(votes.empty());
}

TEST(Retrieval, PrecisionRecallDefinitions) {
  // 3 scenes; craft known confusion.
  using O = std::optional<std::int32_t>;
  const std::vector<O> truth{0, 0, 1, 1, 2, std::nullopt};
  const std::vector<O> pred{0, 1, 1, std::nullopt, 2, 2};
  const auto pr = precision_recall(truth, pred, 3);
  ASSERT_EQ(pr.precision.size(), 3u);
  // Scene 0: P = {0}, V = {0,1}: precision 1, recall 0.5.
  EXPECT_DOUBLE_EQ(pr.precision[0], 1.0);
  EXPECT_DOUBLE_EQ(pr.recall[0], 0.5);
  // Scene 1: P = {1,2}, V = {2,3}: tp=1 -> precision 0.5, recall 0.5.
  EXPECT_DOUBLE_EQ(pr.precision[1], 0.5);
  EXPECT_DOUBLE_EQ(pr.recall[1], 0.5);
  // Scene 2: P = {4,5}, V = {4}: precision 0.5, recall 1.
  EXPECT_DOUBLE_EQ(pr.precision[2], 0.5);
  EXPECT_DOUBLE_EQ(pr.recall[2], 1.0);
}

TEST(Retrieval, PrecisionRecallSizeMismatchThrows) {
  using O = std::optional<std::int32_t>;
  const std::vector<O> a{0};
  const std::vector<O> b{0, 1};
  EXPECT_THROW(precision_recall(a, b, 1), InvalidArgument);
}

TEST(SessionStats, CumulativeUploadMonotone) {
  SessionStats stats;
  stats.uploads = {{0, 0, 1.0, 100}, {0, 0, 0.5, 50}, {0, 0, 2.0, 200}};
  const auto curve = stats.cumulative_upload();
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].second, 50);
  EXPECT_DOUBLE_EQ(curve[1].second, 150);
  EXPECT_DOUBLE_EQ(curve[2].second, 350);
  EXPECT_LT(curve[0].first, curve[1].first);
}

}  // namespace
}  // namespace vp
