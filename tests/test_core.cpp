#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <thread>

#include "core/client.hpp"
#include "core/remote.hpp"
#include "core/retrieval.hpp"
#include "core/server.hpp"
#include "core/session.hpp"
#include "imaging/codec.hpp"
#include "scene/texture.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

Descriptor random_descriptor(Rng& rng) {
  Descriptor d;
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.uniform_u64(80));
  return d;
}

Feature make_feature(Rng& rng, float x = 10, float y = 10) {
  Feature f;
  f.keypoint = {x, y, 2.0f, 0.0f, 1.0f, 0};
  f.descriptor = random_descriptor(rng);
  return f;
}

OracleConfig small_oracle() {
  OracleConfig cfg;
  cfg.capacity = 20'000;
  return cfg;
}

ServerConfig small_server() {
  ServerConfig cfg;
  cfg.oracle = small_oracle();
  return cfg;
}

TEST(Client, RequiresOracleForUniqueSelection) {
  ClientConfig cfg;
  cfg.top_k = 5;
  VisualPrintClient client(cfg);
  Rng rng(1);
  std::vector<Feature> fs;
  for (int i = 0; i < 10; ++i) fs.push_back(make_feature(rng));
  EXPECT_THROW(client.select_features(fs, 5), InvalidArgument);
}

TEST(Client, SelectsMostUniqueFirst) {
  UniquenessOracle oracle(small_oracle());
  Rng rng(2);
  // Common descriptor: inserted many times; unique: once.
  const Feature common = make_feature(rng);
  const Feature unique = make_feature(rng);
  for (int i = 0; i < 40; ++i) oracle.insert(common.descriptor);
  oracle.insert(unique.descriptor);

  ClientConfig cfg;
  cfg.top_k = 1;
  VisualPrintClient client(cfg);
  client.install_oracle(std::move(oracle));
  const auto picked = client.select_features({common, unique}, 1);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0].descriptor, unique.descriptor);
}

TEST(Client, RandomPolicyDeterministicPerSeed) {
  ClientConfig cfg;
  cfg.policy = SelectionPolicy::kRandom;
  VisualPrintClient a(cfg, 7), b(cfg, 7);
  Rng rng(3);
  std::vector<Feature> fs;
  for (int i = 0; i < 30; ++i) fs.push_back(make_feature(rng));
  const auto sa = a.select_features(fs, 10);
  const auto sb = b.select_features(fs, 10);
  ASSERT_EQ(sa.size(), 10u);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].descriptor, sb[i].descriptor);
  }
}

TEST(Client, AllPolicyKeepsEverything) {
  ClientConfig cfg;
  cfg.policy = SelectionPolicy::kAll;
  VisualPrintClient client(cfg);
  Rng rng(4);
  std::vector<Feature> fs;
  for (int i = 0; i < 30; ++i) fs.push_back(make_feature(rng));
  EXPECT_EQ(client.select_features(fs, 10).size(), 30u);
}

TEST(Client, BlurGateRejects) {
  ClientConfig cfg;
  cfg.blur_threshold = 50.0;
  VisualPrintClient client(cfg);
  const ImageF flat(64, 64, 1, 128.0f);  // zero Laplacian variance
  const auto result = client.process_frame(flat, 0.0, 0.0);
  EXPECT_EQ(result.status, FrameResult::Status::kBlurRejected);
  EXPECT_FALSE(result.query.has_value());
}

TEST(Client, StaleFrameRejectedBeforeWork) {
  ClientConfig cfg;
  cfg.stale_frame_budget_s = 0.1;
  VisualPrintClient client(cfg);
  const ImageF frame(64, 64, 1, 128.0f);
  const auto result = client.process_frame(frame, 0.0, 5.0);
  EXPECT_EQ(result.status, FrameResult::Status::kStale);
  EXPECT_EQ(result.sift_ms, 0.0);
}

TEST(Client, ProcessFrameProducesQuery) {
  ClientConfig cfg;
  cfg.top_k = 50;
  cfg.blur_threshold = 1.0;
  VisualPrintClient client(cfg);
  client.install_oracle(UniquenessOracle(small_oracle()));
  Rng rng(5);
  const ImageF frame = painting_texture(200, 150, rng);
  const auto result = client.process_frame(frame, 1.0, 1.0);
  ASSERT_EQ(result.status, FrameResult::Status::kQueued);
  ASSERT_TRUE(result.query.has_value());
  EXPECT_GT(result.total_keypoints, 0u);
  EXPECT_LE(result.query->features.size(), 50u);
  EXPECT_EQ(result.query->image_width, 200);
  EXPECT_GT(result.sift_ms, 0.0);
}

TEST(Server, IngestAndOracleGrow) {
  VisualPrintServer server(small_server());
  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    server.ingest(make_feature(rng), {1.0 * i, 0, 1}, i % 3, 0);
  }
  EXPECT_EQ(server.keypoint_count(), 10u);
  EXPECT_EQ(server.oracle().insertions(), 10u);
  EXPECT_EQ(server.scene_count(), 3);
}

TEST(Server, SceneVotesFavorMatchingScene) {
  VisualPrintServer server(small_server());
  Rng rng(7);
  std::vector<Feature> scene_a, scene_b;
  for (int i = 0; i < 20; ++i) {
    scene_a.push_back(make_feature(rng));
    scene_b.push_back(make_feature(rng));
    server.ingest(scene_a.back(), {0, 0, 0}, 0, 0);
    server.ingest(scene_b.back(), {5, 0, 0}, 1, 0);
  }
  const auto votes = server.scene_votes(scene_a);
  ASSERT_EQ(votes.size(), 2u);
  EXPECT_GT(votes[0], votes[1] + 10);
}

TEST(Server, LocalizeQueryRecoversPosition) {
  ServerConfig cfg = small_server();
  cfg.localize.search_lo = {-10, -10, 0};
  cfg.localize.search_hi = {10, 10, 3};
  cfg.localize.de.time_budget_sec = 1.0;
  cfg.clustering.radius = 5.0;
  VisualPrintServer server(cfg);

  // Ground truth: camera at known pose looking at landmarks; ingest the
  // landmarks, then query with their projections.
  CameraIntrinsics intr{640, 480, 1.15};
  const Pose cam_pose = Pose::from_euler({2, 3, 1.5}, 0.3, 0, 0);
  Rng rng(8);
  FingerprintQuery q;
  q.image_width = 640;
  q.image_height = 480;
  q.fov_h = 1.15f;
  for (int i = 0; i < 25; ++i) {
    const Vec3 body{rng.uniform(-1.5, 1.5), rng.uniform(-1.0, 1.0),
                    rng.uniform(2.0, 6.0)};
    const auto px = intr.project(body);
    if (!px) continue;
    Feature f = make_feature(rng, static_cast<float>(px->x),
                             static_cast<float>(px->y));
    server.ingest(f, cam_pose.to_world(body), 0, 0);
    q.features.push_back(f);
  }
  ASSERT_GE(q.features.size(), 10u);
  Rng solve_rng(9);
  const LocationResponse resp = server.localize_query(q, solve_rng);
  ASSERT_TRUE(resp.found);
  EXPECT_LT(resp.position.distance({2, 3, 1.5}), 0.5);
}

TEST(Server, LocalizeFailsWithNoMatches) {
  VisualPrintServer server(small_server());
  Rng rng(10);
  FingerprintQuery q;
  q.features.push_back(make_feature(rng));
  Rng solve_rng(11);
  EXPECT_FALSE(server.localize_query(q, solve_rng).found);
}

TEST(Server, OracleSnapshotInstallsOnClient) {
  VisualPrintServer server(small_server());
  Rng rng(12);
  const Feature f = make_feature(rng);
  for (int i = 0; i < 5; ++i) server.ingest(f, {0, 0, 0}, 0, 0);
  const auto snapshot = server.oracle_snapshot();

  VisualPrintClient client({});
  client.install_oracle(snapshot);
  ASSERT_TRUE(client.has_oracle());
  EXPECT_GE(client.oracle()->count(f.descriptor), 4u);
}

TEST(Server, OracleDiffRefreshFlow) {
  // First launch: full download. Later: the server ingests more content
  // and ships only an XOR diff; the refreshed client must score the new
  // content exactly like a fresh full download would.
  VisualPrintServer server(small_server());
  Rng rng(21);
  const Feature early = make_feature(rng);
  for (int i = 0; i < 5; ++i) server.ingest(early, {0, 0, 0}, 0, 0);

  VisualPrintClient client({});
  client.install_oracle(server.oracle_snapshot());
  const Bytes base_blob = client.oracle_blob();

  const Feature late = make_feature(rng);
  for (int i = 0; i < 7; ++i) server.ingest(late, {1, 0, 0}, 0, 0);
  EXPECT_EQ(client.oracle()->count(late.descriptor), 0u);  // stale copy

  const OracleDiff diff = server.oracle_diff_from(base_blob);
  client.apply_oracle_diff(diff);
  EXPECT_GE(client.oracle()->count(late.descriptor), 6u);
  EXPECT_GE(client.oracle()->count(early.descriptor), 4u);

  // The diff should be cheaper than a fresh full download.
  EXPECT_LT(diff.compressed_xor.size(),
            server.oracle_snapshot().compressed.size() + 1024);
}

TEST(Server, SaveLoadRoundtrip) {
  namespace fs = std::filesystem;
  ServerConfig cfg = small_server();
  cfg.place_label = "persistence test";
  VisualPrintServer server(cfg);
  Rng rng(31);
  std::vector<Feature> feats;
  for (int i = 0; i < 30; ++i) {
    feats.push_back(make_feature(rng));
    server.ingest(feats.back(), {1.0 * i, 2.0, 0.5}, i % 4, 9);
  }
  const auto path = (fs::temp_directory_path() / "vp_server_test.db").string();
  server.save(path);
  VisualPrintServer loaded = VisualPrintServer::load(path);
  fs::remove(path);

  EXPECT_EQ(loaded.keypoint_count(), 30u);
  EXPECT_EQ(loaded.scene_count(), 4);
  EXPECT_EQ(loaded.oracle().insertions(), 30u);
  // Stored metadata survives.
  EXPECT_DOUBLE_EQ(loaded.stored(7).position.x, 7.0);
  EXPECT_EQ(loaded.stored(7).scene_id, 3);
  // The rebuilt index answers queries identically.
  const auto votes = loaded.scene_votes(feats);
  EXPECT_EQ(votes, server.scene_votes(feats));
  // The oracle scores identically.
  for (const auto& f : feats) {
    EXPECT_EQ(loaded.oracle().count(f.descriptor),
              server.oracle().count(f.descriptor));
  }
}

TEST(Server, LoadRejectsCorruptFile) {
  ServerConfig cfg = small_server();
  VisualPrintServer server(cfg);
  Rng rng(32);
  server.ingest(make_feature(rng), {0, 0, 0}, 0, 0);
  Bytes blob = server.serialize();
  blob[1] ^= 0xFF;
  EXPECT_THROW(VisualPrintServer::deserialize(blob), DecodeError);
  blob[1] ^= 0xFF;
  blob.resize(blob.size() / 2);
  EXPECT_THROW(VisualPrintServer::deserialize(blob), DecodeError);
}

TEST(Client, DiffWithoutOracleThrows) {
  VisualPrintClient client({});
  OracleDiff diff;
  EXPECT_THROW(client.apply_oracle_diff(diff), InvalidArgument);
}

// --- MapStore: the sharded, snapshot-isolated server core ------------------

std::vector<KeypointMapping> random_mappings(Rng& rng, int n, Vec3 base) {
  std::vector<KeypointMapping> ms;
  ms.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ms.push_back({make_feature(rng), base + Vec3{0.1 * i, 0, 0},
                  static_cast<std::uint32_t>(i)});
  }
  return ms;
}

/// A localizable place: mappings seen from a known camera pose, plus the
/// query whose features project those same landmarks.
struct PlaceFixture {
  std::vector<KeypointMapping> mappings;
  FingerprintQuery query;
  Vec3 true_position;
};

PlaceFixture make_place_fixture(Rng& rng, Vec3 cam_pos) {
  const CameraIntrinsics intr{640, 480, 1.15};
  const Pose cam_pose = Pose::from_euler(cam_pos, 0.3, 0, 0);
  PlaceFixture fx;
  fx.true_position = cam_pos;
  fx.query.image_width = 640;
  fx.query.image_height = 480;
  fx.query.fov_h = 1.15f;
  for (int i = 0; i < 25; ++i) {
    const Vec3 body{rng.uniform(-1.5, 1.5), rng.uniform(-1.0, 1.0),
                    rng.uniform(2.0, 6.0)};
    const auto px = intr.project(body);
    if (!px) continue;
    Feature f = make_feature(rng, static_cast<float>(px->x),
                             static_cast<float>(px->y));
    fx.mappings.push_back({f, cam_pose.to_world(body), 0});
    fx.query.features.push_back(f);
  }
  return fx;
}

ServerConfig localizing_server() {
  ServerConfig cfg = small_server();
  cfg.localize.search_lo = {-10, -10, 0};
  cfg.localize.search_hi = {10, 10, 3};
  // Generation/tolerance-bounded, never wall-clock-bounded: a time budget
  // truncates the solve at a load-dependent generation, which would make
  // these tests (one asserts bit-identical serial-vs-pooled answers)
  // flaky on a busy CI box.
  cfg.localize.de.time_budget_sec = 1e9;
  cfg.clustering.radius = 5.0;
  return cfg;
}

TEST(MapStore, SnapshotIsolationAndEpochBump) {
  VisualPrintServer server(small_server());
  MapStore& store = server.store();
  Rng rng(41);

  store.ingest_wardrive("hall", random_mappings(rng, 10, {0, 0, 0}));
  const auto first = store.snapshot("hall");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->stored.size(), 10u);
  EXPECT_EQ(first->epoch, 1u);

  store.ingest_wardrive("hall", random_mappings(rng, 5, {5, 0, 0}));
  // The earlier snapshot is immutable: in-flight queries keep reading the
  // exact state they started with.
  EXPECT_EQ(first->stored.size(), 10u);
  EXPECT_EQ(first->epoch, 1u);
  const auto second = store.snapshot("hall");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->stored.size(), 15u);
  EXPECT_EQ(second->epoch, 2u);
  EXPECT_EQ(store.epoch("hall"), 2u);
  EXPECT_GE(store.swap_count(), 2u);
}

TEST(MapStore, SingleIngestsVisibleOnNextRead) {
  VisualPrintServer server(small_server());
  Rng rng(42);
  // The legacy unplaced ingest loop buffers into the default builder and
  // publishes lazily; reads must still see their own writes.
  for (int i = 0; i < 8; ++i) {
    server.ingest(make_feature(rng), {1.0 * i, 0, 1}, i % 2, 0);
  }
  EXPECT_EQ(server.keypoint_count(), 8u);
  const auto shard = server.store().snapshot(server.store().default_place());
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->stored.size(), 8u);
}

TEST(MapStore, TargetedAndFanoutQueries) {
  Rng rng(43);
  ServerConfig cfg = localizing_server();
  VisualPrintServer server(cfg);

  PlaceFixture a = make_place_fixture(rng, {2, 3, 1.5});
  PlaceFixture b = make_place_fixture(rng, {-5, -4, 1.2});
  ASSERT_GE(a.query.features.size(), 10u);
  ASSERT_GE(b.query.features.size(), 10u);

  ServerConfig cfg_a = cfg, cfg_b = cfg;
  cfg_a.place_label = "Wing A";
  cfg_b.place_label = "Wing B";
  server.ingest_wardrive("wing-a", a.mappings, &cfg_a);
  server.ingest_wardrive("wing-b", b.mappings, &cfg_b);
  EXPECT_EQ(server.store().place_count(), 3u);  // default + 2 wings

  // Targeted: each query routes to its shard and recovers its pose.
  a.query.place = "wing-a";
  Rng rng_a(44);
  const LocationResponse ra = server.localize_query(a.query, rng_a);
  ASSERT_TRUE(ra.found);
  EXPECT_EQ(ra.place, "wing-a");
  EXPECT_EQ(ra.place_label, "Wing A");
  EXPECT_LT(ra.position.distance(a.true_position), 0.5);

  b.query.place = "wing-b";
  Rng rng_b(45);
  const LocationResponse rb = server.localize_query(b.query, rng_b);
  ASSERT_TRUE(rb.found);
  EXPECT_EQ(rb.place, "wing-b");
  EXPECT_LT(rb.position.distance(b.true_position), 0.5);

  // Fan-out: an unplaced query is answered by the best-scoring shard.
  FingerprintQuery fan = a.query;
  fan.place.clear();
  Rng rng_fan(46);
  const LocationResponse rf = server.localize_query(fan, rng_fan);
  ASSERT_TRUE(rf.found);
  EXPECT_EQ(rf.place, "wing-a");
  EXPECT_LT(rf.position.distance(a.true_position), 0.5);
}

TEST(MapStore, FanoutDeterministicAcrossPoolSizes) {
  Rng rng(47);
  const PlaceFixture a = make_place_fixture(rng, {2, 3, 1.5});
  const PlaceFixture b = make_place_fixture(rng, {-5, -4, 1.2});

  auto run = [&](ThreadPool* pool) {
    ServerConfig cfg = localizing_server();
    cfg.pool = pool;
    VisualPrintServer server(cfg);
    server.ingest_wardrive("wing-a", a.mappings);
    server.ingest_wardrive("wing-b", b.mappings);
    FingerprintQuery fan = a.query;  // place empty -> fan out
    Rng qrng(48);
    return server.localize_query(fan, qrng);
  };

  ThreadPool pool(4);
  const LocationResponse serial = run(nullptr);
  const LocationResponse parallel = run(&pool);
  EXPECT_EQ(serial.found, parallel.found);
  EXPECT_EQ(serial.place, parallel.place);
  EXPECT_DOUBLE_EQ(serial.position.x, parallel.position.x);
  EXPECT_DOUBLE_EQ(serial.position.y, parallel.position.y);
  EXPECT_DOUBLE_EQ(serial.position.z, parallel.position.z);
  EXPECT_DOUBLE_EQ(serial.residual, parallel.residual);
}

TEST(MapStore, EmptyAndUnknownPlacesAnswerStructuredMiss) {
  VisualPrintServer server(small_server());
  Rng rng(49);
  FingerprintQuery q;
  q.frame_id = 77;
  q.features.push_back(make_feature(rng));

  // Empty map, unplaced query: a clean no-fix, never a throw.
  Rng r1(50);
  const LocationResponse empty = server.localize_query(q, r1);
  EXPECT_FALSE(empty.found);
  EXPECT_EQ(empty.frame_id, 77u);

  // Unknown place: same contract.
  q.place = "never-wardriven";
  Rng r2(51);
  const LocationResponse unknown = server.localize_query(q, r2);
  EXPECT_FALSE(unknown.found);

  // And over the request protocol it must be a LocationResponse frame,
  // not a VPE! error.
  ByteWriter w;
  w.u8(kQueryRequest);
  w.raw(q.encode());
  const Bytes reply = server.handle_request(w.bytes(), 1);
  ASSERT_FALSE(is_error_frame(reply));
  EXPECT_FALSE(LocationResponse::decode(reply).found);
}

TEST(MapStore, StaleOracleRejectedOverProtocol) {
  VisualPrintServer server(small_server());
  Rng rng(52);
  server.ingest_wardrive("hall", random_mappings(rng, 10, {0, 0, 0}));

  const OracleDownload download = server.oracle_snapshot("hall");
  EXPECT_EQ(download.place, "hall");
  EXPECT_EQ(download.epoch, 1u);

  // Republish: the downloaded epoch is now stale.
  server.ingest_wardrive("hall", random_mappings(rng, 5, {1, 0, 0}));

  FingerprintQuery q;
  q.place = "hall";
  q.oracle_epoch = download.epoch;
  q.features.push_back(make_feature(rng));
  ByteWriter w;
  w.u8(kQueryRequest);
  w.raw(q.encode());
  const Bytes reply = server.handle_request(w.bytes(), 1);
  ASSERT_TRUE(is_error_frame(reply));
  EXPECT_EQ(ErrorResponse::decode(reply).code, ErrorResponse::kStaleOracle);

  // Epoch 0 (no oracle installed) always passes the check.
  q.oracle_epoch = 0;
  ByteWriter w2;
  w2.u8(kQueryRequest);
  w2.raw(q.encode());
  EXPECT_FALSE(is_error_frame(server.handle_request(w2.bytes(), 1)));
}

TEST(MapStore, RemoteLocalizerRecoversFromStaleOracle) {
  Rng rng(53);
  ServerConfig cfg = localizing_server();
  VisualPrintServer server(cfg);
  PlaceFixture fx = make_place_fixture(rng, {2, 3, 1.5});
  ASSERT_GE(fx.query.features.size(), 10u);
  server.ingest_wardrive("hall", fx.mappings);

  RemoteLocalizer localizer([&server](std::span<const std::uint8_t> req) {
    return server.handle_request(req, 7);
  });
  VisualPrintClient client({});
  localizer.on_oracle_refresh(
      [&client](const OracleDownload& d) { client.install_oracle(d); });

  const OracleDownload first = localizer.fetch_oracle("hall");
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_EQ(client.oracle_place(), "hall");
  EXPECT_EQ(client.oracle_epoch(), 1u);

  // The map is republished behind the client's back.
  server.ingest_wardrive("hall", fx.mappings);
  EXPECT_EQ(server.store().epoch("hall"), 2u);

  fx.query.place = "hall";
  fx.query.oracle_epoch = first.epoch;  // stale
  const LocationResponse resp = localizer.localize(fx.query);
  ASSERT_TRUE(resp.found);
  EXPECT_LT(resp.position.distance(fx.true_position), 0.5);
  EXPECT_EQ(localizer.stale_refreshes(), 1u);
  EXPECT_EQ(localizer.known_epoch("hall"), 2u);
  // The refresh hook re-installed the fresh oracle into the client.
  EXPECT_EQ(client.oracle_epoch(), 2u);
}

TEST(CompactUplink, CompactQueryLocalizesEndToEnd) {
  Rng rng(60);
  ServerConfig cfg = localizing_server();
  cfg.index.pq.enabled = true;
  VisualPrintServer server(cfg);
  PlaceFixture fx = make_place_fixture(rng, {2, 3, 1.5});
  ASSERT_GE(fx.query.features.size(), 10u);
  server.ingest_wardrive("hall", fx.mappings);
  ASSERT_EQ(server.store().storage_mode("hall"), "pq");

  RemoteLocalizer localizer([&server](std::span<const std::uint8_t> req) {
    return server.handle_request(req, 7);
  });
  localizer.enable_compact_uplink();
  const OracleDownload download = localizer.fetch_oracle("hall");
  // A PQ place ships its codebook with the oracle.
  ASSERT_EQ(download.codebook.size(), kPqCodebookBytes);
  EXPECT_TRUE(localizer.has_codebook("hall"));

  fx.query.place = "hall";
  fx.query.oracle_epoch = download.epoch;
  const LocationResponse resp = localizer.localize(fx.query);
  ASSERT_TRUE(resp.found);
  // Few stored descriptors -> every one is (close to) its own centroid, so
  // the reconstructed query ranks like the raw one and the solve succeeds.
  EXPECT_LT(resp.position.distance(fx.true_position), 0.5);
  EXPECT_EQ(localizer.compact_queries(), 1u);

  // Symmetric-ADC serving is bit-identical: flipping the runtime knob and
  // re-asking the same frame must reproduce the very same fix.
  server.store().set_compact_symmetric(true);
  const LocationResponse resp2 = localizer.localize(fx.query);
  ASSERT_TRUE(resp2.found);
  EXPECT_DOUBLE_EQ(resp2.position.x, resp.position.x);
  EXPECT_DOUBLE_EQ(resp2.position.y, resp.position.y);
  EXPECT_DOUBLE_EQ(resp2.position.z, resp.position.z);
  EXPECT_DOUBLE_EQ(resp2.residual, resp.residual);
  EXPECT_EQ(localizer.compact_queries(), 2u);
}

TEST(CompactUplink, StaleCodebookRefreshesTransparently) {
  Rng rng(61);
  ServerConfig cfg = localizing_server();
  cfg.index.pq.enabled = true;
  VisualPrintServer server(cfg);
  PlaceFixture fx = make_place_fixture(rng, {2, 3, 1.5});
  ASSERT_GE(fx.query.features.size(), 10u);
  server.ingest_wardrive("hall", fx.mappings);

  RemoteLocalizer localizer([&server](std::span<const std::uint8_t> req) {
    return server.handle_request(req, 7);
  });
  localizer.enable_compact_uplink();
  VisualPrintClient client({});
  localizer.on_oracle_refresh(
      [&client](const OracleDownload& d) { client.install_oracle(d); });
  const OracleDownload first = localizer.fetch_oracle("hall");
  EXPECT_EQ(first.epoch, 1u);
  // The codebook rides the download into the client's per-place cache too.
  EXPECT_EQ(client.codebook_blob().size(), kPqCodebookBytes);

  // Republish behind the client's back: epoch 2. The client's cached
  // codebook epoch is now stale; the server must refuse to guess.
  server.ingest_wardrive("hall", fx.mappings);
  EXPECT_EQ(server.store().epoch("hall"), 2u);

  fx.query.place = "hall";
  fx.query.oracle_epoch = first.epoch;  // stale, like the codebook
  const LocationResponse resp = localizer.localize(fx.query);
  ASSERT_TRUE(resp.found);
  EXPECT_LT(resp.position.distance(fx.true_position), 0.5);
  // One transparent refresh; both the first attempt and the re-encoded
  // resend went out compact.
  EXPECT_EQ(localizer.stale_refreshes(), 1u);
  EXPECT_EQ(localizer.known_epoch("hall"), 2u);
  EXPECT_EQ(localizer.compact_queries(), 2u);
  EXPECT_EQ(client.oracle_epoch(), 2u);
}

TEST(CompactUplink, FallsBackToRawWithoutCodebook) {
  Rng rng(62);
  ServerConfig cfg = localizing_server();  // exact storage: no codebook
  VisualPrintServer server(cfg);
  PlaceFixture fx = make_place_fixture(rng, {2, 3, 1.5});
  ASSERT_GE(fx.query.features.size(), 10u);
  server.ingest_wardrive("hall", fx.mappings);

  RemoteLocalizer localizer([&server](std::span<const std::uint8_t> req) {
    return server.handle_request(req, 7);
  });
  localizer.enable_compact_uplink();
  const OracleDownload download = localizer.fetch_oracle("hall");
  EXPECT_TRUE(download.codebook.empty());
  EXPECT_FALSE(localizer.has_codebook("hall"));

  // Compact uplink is enabled but unusable for this place: the query must
  // fall back to the raw wire format and still localize.
  fx.query.place = "hall";
  fx.query.oracle_epoch = download.epoch;
  const LocationResponse resp = localizer.localize(fx.query);
  ASSERT_TRUE(resp.found);
  EXPECT_LT(resp.position.distance(fx.true_position), 0.5);
  EXPECT_EQ(localizer.compact_queries(), 0u);
  EXPECT_EQ(localizer.stale_refreshes(), 0u);
}

TEST(MapStore, ClientCachesOraclePerPlace) {
  VisualPrintServer server(small_server());
  Rng rng(54);
  server.ingest_wardrive("wing-a", random_mappings(rng, 8, {0, 0, 0}));
  server.ingest_wardrive("wing-b", random_mappings(rng, 8, {5, 0, 0}));

  VisualPrintClient client({});
  client.install_oracle(server.oracle_snapshot("wing-a"));
  client.install_oracle(server.oracle_snapshot("wing-b"));
  EXPECT_EQ(client.cached_oracle_count(), 2u);
  EXPECT_EQ(client.oracle_place(), "wing-b");

  ASSERT_TRUE(client.select_place("wing-a"));
  EXPECT_EQ(client.oracle_place(), "wing-a");
  EXPECT_EQ(client.oracle_epoch(), 1u);
  EXPECT_FALSE(client.select_place("wing-c"));
  EXPECT_EQ(client.oracle_place(), "wing-a");  // unchanged on failure
}

TEST(MapStore, SaveLoadRoundtripMultiPlace) {
  namespace fs = std::filesystem;
  VisualPrintServer server(small_server());
  Rng rng(55);
  server.ingest_wardrive("wing-a", random_mappings(rng, 12, {0, 0, 0}));
  server.ingest_wardrive("wing-b", random_mappings(rng, 7, {5, 0, 0}));
  server.ingest_wardrive("wing-b", random_mappings(rng, 3, {6, 0, 0}));

  const auto path =
      (fs::temp_directory_path() / "vp_map_store_test.db").string();
  server.save(path);
  VisualPrintServer loaded = VisualPrintServer::load(path);
  fs::remove(path);

  EXPECT_EQ(loaded.store().default_place(), server.store().default_place());
  EXPECT_EQ(loaded.places(), server.places());
  const auto a = loaded.store().snapshot("wing-a");
  const auto b = loaded.store().snapshot("wing-b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->stored.size(), 12u);
  EXPECT_EQ(b->stored.size(), 10u);
  // Publish epochs survive the round-trip: clients holding pre-save
  // oracles are still told the truth about staleness.
  EXPECT_EQ(a->epoch, 1u);
  EXPECT_EQ(b->epoch, 2u);
  EXPECT_EQ(loaded.oracle_snapshot("wing-b").epoch, 2u);
}

TEST(MapStore, LoadShardsMergesDatabases) {
  namespace fs = std::filesystem;
  Rng rng(56);
  const auto path_a =
      (fs::temp_directory_path() / "vp_map_store_a.db").string();
  const auto path_b =
      (fs::temp_directory_path() / "vp_map_store_b.db").string();
  {
    VisualPrintServer s(small_server());
    s.ingest_wardrive("wing-a", random_mappings(rng, 6, {0, 0, 0}));
    s.save(path_a);
  }
  {
    VisualPrintServer s(small_server());
    s.ingest_wardrive("wing-b", random_mappings(rng, 9, {5, 0, 0}));
    s.save(path_b);
  }
  VisualPrintServer merged = VisualPrintServer::load(path_a);
  merged.load_shards(path_b);
  fs::remove(path_a);
  fs::remove(path_b);

  ASSERT_NE(merged.store().snapshot("wing-a"), nullptr);
  ASSERT_NE(merged.store().snapshot("wing-b"), nullptr);
  EXPECT_EQ(merged.store().snapshot("wing-a")->stored.size(), 6u);
  EXPECT_EQ(merged.store().snapshot("wing-b")->stored.size(), 9u);
}

TEST(MapStore, V1DatabaseLoadsAsDefaultShard) {
  // Hand-assemble a pre-shard v1 file: single place, oracle before
  // keypoints, fine-grained oracle version at the tail.
  Rng rng(57);
  UniquenessOracle oracle(small_oracle());
  std::vector<Feature> feats;
  for (int i = 0; i < 4; ++i) {
    feats.push_back(make_feature(rng));
    oracle.insert(feats.back().descriptor);
  }

  ByteWriter w;
  w.u32(0x56504442u);  // "VPDB"
  w.u16(1);
  w.str("legacy hall");
  LshIndexConfig index_cfg;
  w.u16(static_cast<std::uint16_t>(index_cfg.lsh.tables));
  w.u16(static_cast<std::uint16_t>(index_cfg.lsh.projections));
  w.f64(index_cfg.lsh.width);
  w.u64(index_cfg.lsh.seed);
  w.u8(index_cfg.multiprobe ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(index_cfg.max_candidates));
  w.u32(2);       // neighbors_per_keypoint
  w.u32(65'000);  // max_match_distance2
  w.blob(zlib_compress(oracle.serialize(), 6));
  w.u32(static_cast<std::uint32_t>(feats.size()));
  for (std::size_t i = 0; i < feats.size(); ++i) {
    const Descriptor& d = feats[i].descriptor;
    w.raw(std::span<const std::uint8_t>(d.data(), d.size()));
    w.f64(1.0 * static_cast<double>(i));
    w.f64(2.0);
    w.f64(0.5);
    w.i32(static_cast<std::int32_t>(i % 2));
    w.u32(3);
  }
  w.u32(4);  // oracle_version

  VisualPrintServer loaded = VisualPrintServer::deserialize(w.bytes());
  EXPECT_EQ(loaded.store().default_place(), "legacy hall");
  EXPECT_EQ(loaded.keypoint_count(), 4u);
  EXPECT_EQ(loaded.scene_count(), 2);
  EXPECT_EQ(loaded.store().epoch("legacy hall"), 1u);
  for (const auto& f : feats) {
    EXPECT_EQ(loaded.oracle().count(f.descriptor),
              oracle.count(f.descriptor));
  }
  // A v1 payload saved again comes back as v2 with identical content.
  const Bytes resaved = loaded.serialize();
  VisualPrintServer again = VisualPrintServer::deserialize(resaved);
  EXPECT_EQ(again.keypoint_count(), 4u);
  EXPECT_DOUBLE_EQ(again.stored(1).position.x, 1.0);
}

TEST(MapStore, TruncatedShardBlobRejected) {
  VisualPrintServer server(small_server());
  Rng rng(58);
  server.ingest_wardrive("hall", random_mappings(rng, 5, {0, 0, 0}));
  const Bytes blob = server.serialize();

  // Any truncation inside the shard blobs must throw, never misparse.
  for (std::size_t cut = 8; cut < blob.size(); cut += 97) {
    Bytes t(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(VisualPrintServer::deserialize(t), DecodeError) << cut;
  }

  // A lying shard-record length field (the first record starts after
  // magic + version + the v4 total-file-size field + default place
  // string + shard count).
  Bytes lie = blob;
  ByteReader r(lie);
  r.u32();
  r.u16();
  r.u64();
  (void)r.str();
  r.u32();
  const std::size_t len_off = lie.size() - r.remaining();
  for (std::size_t i = 0; i < 4; ++i) lie[len_off + i] = 0xFF;
  EXPECT_THROW(VisualPrintServer::deserialize(lie), DecodeError);
}

ServerConfig pq_server() {
  ServerConfig cfg = small_server();
  cfg.index.multiprobe = true;
  cfg.index.pq.enabled = true;
  cfg.index.pq.rerank_depth = 8;
  return cfg;
}

TEST(MapStore, V2DatabaseLoadsWithoutPqFields) {
  // Hand-assemble a pre-PQ v2 file: multi-shard header, but the index
  // config stops at max_match_distance2 and no compact-descriptor
  // section follows the keypoints. Bytes written by the v2 code must
  // keep loading verbatim after the v3 format change.
  Rng rng(60);
  UniquenessOracle oracle(small_oracle());
  std::vector<Feature> feats;
  for (int i = 0; i < 5; ++i) {
    feats.push_back(make_feature(rng));
    oracle.insert(feats.back().descriptor);
  }

  ByteWriter shard;
  shard.str("old wing");
  shard.str("old wing");
  LshIndexConfig index_cfg;
  shard.u16(static_cast<std::uint16_t>(index_cfg.lsh.tables));
  shard.u16(static_cast<std::uint16_t>(index_cfg.lsh.projections));
  shard.f64(index_cfg.lsh.width);
  shard.u64(index_cfg.lsh.seed);
  shard.u8(index_cfg.multiprobe ? 1 : 0);
  shard.u32(static_cast<std::uint32_t>(index_cfg.max_candidates));
  shard.u32(2);       // neighbors_per_keypoint
  shard.u32(65'000);  // max_match_distance2
  shard.u32(3);       // epoch
  shard.u32(5);       // oracle_version
  shard.blob(zlib_compress(oracle.serialize(), 6));
  shard.u32(static_cast<std::uint32_t>(feats.size()));
  for (std::size_t i = 0; i < feats.size(); ++i) {
    const Descriptor& d = feats[i].descriptor;
    shard.raw(std::span<const std::uint8_t>(d.data(), d.size()));
    shard.f64(1.0 * static_cast<double>(i));
    shard.f64(2.0);
    shard.f64(0.5);
    shard.i32(static_cast<std::int32_t>(i % 2));
    shard.u32(3);
  }

  ByteWriter w;
  w.u32(0x56504442u);  // "VPDB"
  w.u16(2);
  w.str("old wing");
  w.u32(1);
  w.blob(shard.bytes());

  VisualPrintServer loaded = VisualPrintServer::deserialize(w.bytes());
  EXPECT_EQ(loaded.store().default_place(), "old wing");
  EXPECT_EQ(loaded.keypoint_count(), 5u);
  EXPECT_EQ(loaded.store().epoch("old wing"), 3u);
  // A v2 file knows nothing of PQ: the shard loads in exact mode with
  // the default (disabled) PQ config.
  EXPECT_EQ(loaded.store().storage_mode("old wing"), "exact");
  const auto shard_snap = loaded.store().snapshot("old wing");
  ASSERT_NE(shard_snap, nullptr);
  EXPECT_FALSE(shard_snap->config.index.pq.enabled);
  // Resaving upgrades to v3 without changing content.
  VisualPrintServer again = VisualPrintServer::deserialize(loaded.serialize());
  EXPECT_EQ(again.keypoint_count(), 5u);
  EXPECT_DOUBLE_EQ(again.stored(2).position.x, 2.0);
}

TEST(MapStore, PqShardSaveLoadRoundtripStaysQueryReady) {
  ServerConfig cfg = pq_server();
  VisualPrintServer server(cfg);
  Rng rng(61);
  server.store().ingest_wardrive("gallery", random_mappings(rng, 40, {0, 0, 0}),
                                 &cfg);
  ASSERT_EQ(server.store().storage_mode("gallery"), "pq");
  const auto before = server.store().snapshot("gallery");
  ASSERT_NE(before, nullptr);
  ASSERT_TRUE(before->index.pq_ready());

  VisualPrintServer loaded = VisualPrintServer::deserialize(server.serialize());
  EXPECT_EQ(loaded.store().storage_mode("gallery"), "pq");
  const auto after = loaded.store().snapshot("gallery");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->epoch, before->epoch);
  EXPECT_EQ(after->config.index.pq.rerank_depth, 8u);
  // The codebook and codes come back byte-identical — restored, not
  // retrained — so ADC rankings survive the roundtrip exactly.
  ASSERT_TRUE(after->index.pq_ready());
  const auto raw_a = before->index.pq_codebook().raw();
  const auto raw_b = after->index.pq_codebook().raw();
  ASSERT_EQ(raw_a.size(), raw_b.size());
  EXPECT_TRUE(std::equal(raw_a.begin(), raw_a.end(), raw_b.begin()));
  const auto codes_a = before->index.pq_codes();
  const auto codes_b = after->index.pq_codes();
  ASSERT_EQ(codes_a.size(), codes_b.size());
  EXPECT_TRUE(std::equal(codes_a.begin(), codes_a.end(), codes_b.begin()));
  // And queries agree match-for-match.
  for (std::uint32_t id = 0; id < 40; id += 7) {
    const auto qa = before->index.query(before->index.descriptor(id), 3);
    const auto qb = after->index.query(after->index.descriptor(id), 3);
    ASSERT_EQ(qa.size(), qb.size());
    for (std::size_t j = 0; j < qa.size(); ++j) {
      EXPECT_EQ(qa[j].id, qb[j].id);
      EXPECT_EQ(qa[j].distance2, qb[j].distance2);
    }
  }
}

TEST(MapStore, PqDatabaseTruncationRejected) {
  ServerConfig cfg = pq_server();
  VisualPrintServer server(cfg);
  Rng rng(62);
  server.store().ingest_wardrive("gallery", random_mappings(rng, 12, {0, 0, 0}),
                                 &cfg);
  const Bytes blob = server.serialize();
  ASSERT_NO_THROW(VisualPrintServer::deserialize(blob));
  // Every prefix truncation of a PQ-carrying database must throw — the
  // codebook and codes blobs are inside the cut range for the late cuts.
  for (std::size_t cut = 8; cut < blob.size(); cut += 97) {
    Bytes t(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(VisualPrintServer::deserialize(t), DecodeError) << cut;
  }
}

/// A complete v3 single-shard database with an arbitrary PQ section:
/// `codebook_raw` and `codes_raw` are zlib'd into the shard verbatim, so
/// callers can write deliberately wrong sizes.
Bytes v3_db_with_pq_section(std::span<const Feature> feats,
                            const UniquenessOracle& oracle,
                            std::span<const std::uint8_t> codebook_raw,
                            std::span<const std::uint8_t> codes_raw) {
  ByteWriter shard;
  shard.str("gallery");
  shard.str("gallery");
  LshIndexConfig index_cfg;
  shard.u16(static_cast<std::uint16_t>(index_cfg.lsh.tables));
  shard.u16(static_cast<std::uint16_t>(index_cfg.lsh.projections));
  shard.f64(index_cfg.lsh.width);
  shard.u64(index_cfg.lsh.seed);
  shard.u8(0);
  shard.u32(static_cast<std::uint32_t>(index_cfg.max_candidates));
  shard.u32(2);       // neighbors_per_keypoint
  shard.u32(65'000);  // max_match_distance2
  shard.u8(1);        // pq.enabled
  shard.u32(8);       // pq.rerank_depth
  shard.u32(8);       // pq.train.iterations
  shard.u32(2048);    // pq.train.max_samples
  shard.u64(1);       // pq.train.seed
  shard.u32(1);       // epoch
  shard.u32(static_cast<std::uint32_t>(feats.size()));  // oracle_version
  shard.blob(zlib_compress(oracle.serialize(), 6));
  shard.u32(static_cast<std::uint32_t>(feats.size()));
  for (const Feature& f : feats) {
    shard.raw(std::span<const std::uint8_t>(f.descriptor.data(),
                                            f.descriptor.size()));
    shard.f64(0.0);
    shard.f64(0.0);
    shard.f64(0.0);
    shard.i32(-1);
    shard.u32(0);
  }
  shard.u8(1);  // has_pq
  shard.blob(zlib_compress(codebook_raw, 6));
  shard.blob(zlib_compress(codes_raw, 6));

  ByteWriter w;
  w.u32(0x56504442u);  // "VPDB"
  w.u16(3);
  w.str("gallery");
  w.u32(1);
  w.blob(shard.bytes());
  return w.take();
}

TEST(MapStore, CorruptPqSectionRejectedNotHalfLoaded) {
  Rng rng(63);
  UniquenessOracle oracle(small_oracle());
  std::vector<Feature> feats;
  for (int i = 0; i < 6; ++i) {
    feats.push_back(make_feature(rng));
    oracle.insert(feats.back().descriptor);
  }
  // A well-formed section parses (sanity for the helper itself).
  std::vector<std::uint8_t> flat;
  for (const Feature& f : feats) {
    flat.insert(flat.end(), f.descriptor.begin(), f.descriptor.end());
  }
  const PqCodebook book = PqCodebook::train(flat.data(), feats.size());
  std::vector<std::uint8_t> codes(feats.size() * kPqCodeBytes);
  for (std::size_t i = 0; i < feats.size(); ++i) {
    book.encode(flat.data() + i * kDescriptorDims,
                codes.data() + i * kPqCodeBytes);
  }
  const Bytes good =
      v3_db_with_pq_section(feats, oracle, book.raw(), codes);
  VisualPrintServer loaded = VisualPrintServer::deserialize(good);
  EXPECT_EQ(loaded.store().storage_mode("gallery"), "pq");

  // A codebook blob that inflates fine but has the wrong size is rejected
  // (zlib checksums cannot catch a substituted payload; the size check
  // must).
  const std::vector<std::uint8_t> short_book(100, 7);
  EXPECT_THROW(VisualPrintServer::deserialize(v3_db_with_pq_section(
                   feats, oracle, short_book, codes)),
               DecodeError);

  // Codes that cover the wrong number of descriptors are rejected.
  const std::vector<std::uint8_t> short_codes((feats.size() - 1) *
                                              kPqCodeBytes);
  EXPECT_THROW(VisualPrintServer::deserialize(v3_db_with_pq_section(
                   feats, oracle, book.raw(), short_codes)),
               DecodeError);
}

TEST(MapStore, StorageModeReportsPerPlace) {
  ServerConfig exact_cfg = small_server();
  ServerConfig pq_cfg = pq_server();
  VisualPrintServer server(exact_cfg);
  Rng rng(64);
  server.store().ingest_wardrive("plain", random_mappings(rng, 6, {0, 0, 0}),
                                 &exact_cfg);
  server.store().ingest_wardrive("compact",
                                 random_mappings(rng, 6, {4, 0, 0}), &pq_cfg);
  EXPECT_EQ(server.store().storage_mode("plain"), "exact");
  EXPECT_EQ(server.store().storage_mode("compact"), "pq");
  EXPECT_EQ(server.store().storage_mode("nowhere"), "");
}

TEST(MapStoreSoak, IngestWhileServingIsRaceFree) {
  // The TSan contract behind the whole design: localization queries and
  // oracle downloads proceed concurrently with wardrive publishes, with
  // readers on immutable snapshots and writers behind the store mutex.
  VisualPrintServer server(small_server());
  Rng seed_rng(59);
  server.ingest_wardrive("hall", random_mappings(seed_rng, 10, {0, 0, 0}));
  server.ingest_wardrive("annex", random_mappings(seed_rng, 10, {8, 0, 0}));

  constexpr int kQueryThreads = 4;
  constexpr int kQueriesPerThread = 120;
  constexpr int kPublishes = 24;
  std::atomic<bool> failed{false};

  std::vector<std::thread> readers;
  readers.reserve(kQueryThreads);
  for (int t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&server, &failed, t] {
      Rng rng(100 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kQueriesPerThread && !failed.load(); ++i) {
        try {
          FingerprintQuery q;
          q.frame_id = static_cast<std::uint32_t>(i);
          q.place = (i % 3 == 0) ? "" : ((i % 3 == 1) ? "hall" : "annex");
          // Occasionally claim an epoch to drive the staleness check
          // concurrently with publishes.
          q.oracle_epoch = (i % 5 == 0) ? 1 + static_cast<std::uint32_t>(i % 7)
                                        : 0;
          for (int k = 0; k < 4; ++k) q.features.push_back(make_feature(rng));
          ByteWriter w;
          w.u8(kQueryRequest);
          w.raw(q.encode());
          const Bytes reply = server.handle_request(w.bytes(), 7);
          if (is_error_frame(reply)) {
            if (ErrorResponse::decode(reply).code !=
                ErrorResponse::kStaleOracle) {
              failed.store(true);
            }
          } else {
            (void)LocationResponse::decode(reply);
          }
          if (i % 10 == 0) {
            ByteWriter ow;
            ow.u8(kOracleRequest);
            ow.raw(OracleRequest{"hall"}.encode());
            (void)OracleDownload::decode(server.handle_request(ow.bytes(), 7));
          }
        } catch (...) {
          failed.store(true);
        }
      }
    });
  }

  Rng ingest_rng(60);
  for (int p = 0; p < kPublishes; ++p) {
    const std::string place = (p % 2 == 0) ? "hall" : "annex";
    server.ingest_wardrive(place, random_mappings(ingest_rng, 6, {1.0 * p, 0, 0}));
  }
  for (auto& t : readers) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(server.store().epoch("hall"), 1u + kPublishes / 2);
  EXPECT_EQ(server.store().epoch("annex"), 1u + kPublishes / 2);
}

// ---------------------------------------------------------------------------
// Wire-level trace propagation through the server handler (v3) and the
// slow-query log it feeds.

Bytes framed_query(const FingerprintQuery& q) {
  ByteWriter w;
  w.u8(kQueryRequest);
  w.raw(q.encode());
  return w.take();
}

TEST(MapStore, TracedQueryEchoesServerSpans) {
  Rng rng(61);
  VisualPrintServer server(localizing_server());
  PlaceFixture fx = make_place_fixture(rng, {2, 3, 1.5});
  server.ingest_wardrive("hall", fx.mappings);
  fx.query.place = "hall";
  fx.query.trace_id = 0xFACEull;
  fx.query.trace_flags = obs::kTraceSampled;

  const Bytes reply = server.handle_request(framed_query(fx.query), 7);
  ASSERT_FALSE(is_error_frame(reply));
  const LocationResponse resp = LocationResponse::decode(reply);
  EXPECT_EQ(resp.trace_id, 0xFACEull);
#if VP_OBS_ENABLED
  // The echoed block is the handler's span tree: wire decode plus the
  // localization stages, parents always preceding children.
  ASSERT_FALSE(resp.server_spans.empty());
  std::vector<std::string> names;
  for (const auto& s : resp.server_spans) names.push_back(s.name);
  for (const char* stage : {"decode", "lsh.retrieve", "localize.solve"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), stage), names.end())
        << "missing stage " << stage;
  }
  for (std::size_t i = 0; i < resp.server_spans.size(); ++i) {
    EXPECT_GE(resp.server_spans[i].parent, -1);
    EXPECT_LT(resp.server_spans[i].parent, static_cast<std::int16_t>(i));
    EXPECT_GE(resp.server_spans[i].duration_ms, 0.0f);
  }
#else
  EXPECT_TRUE(resp.server_spans.empty());
#endif
}

TEST(MapStore, UntracedQueryAnswersByteCompatibleV2) {
  Rng rng(62);
  VisualPrintServer server(small_server());
  server.ingest_wardrive("hall", random_mappings(rng, 10, {0, 0, 0}));
  FingerprintQuery q;
  q.place = "hall";
  q.features.push_back(make_feature(rng));

  const Bytes reply = server.handle_request(framed_query(q), 7);
  ASSERT_FALSE(is_error_frame(reply));
  // A pre-trace client must see exactly what it always saw: a v2 frame
  // with no trailing trace fields.
  EXPECT_EQ(reply[4] | (reply[5] << 8), 2);
  const LocationResponse resp = LocationResponse::decode(reply);
  EXPECT_EQ(resp.trace_id, 0u);
  EXPECT_TRUE(resp.server_spans.empty());
}

TEST(MapStore, TracedUnsampledQueryOmitsSpanBlock) {
  Rng rng(63);
  VisualPrintServer server(small_server());
  server.ingest_wardrive("hall", random_mappings(rng, 10, {0, 0, 0}));
  FingerprintQuery q;
  q.place = "hall";
  q.trace_id = 5;  // correlate, but sampled bit clear: no echo requested
  q.features.push_back(make_feature(rng));

  const LocationResponse resp =
      LocationResponse::decode(server.handle_request(framed_query(q), 7));
  EXPECT_EQ(resp.trace_id, 5u);
  EXPECT_TRUE(resp.server_spans.empty());
}

TEST(MapStore, SlowQueryLogServedAsStatsFormat2) {
  Rng rng(64);
  VisualPrintServer server(localizing_server());
  PlaceFixture fx = make_place_fixture(rng, {2, 3, 1.5});
  server.ingest_wardrive("hall", fx.mappings);
  fx.query.place = "hall";
  fx.query.trace_id = 0xBEEFull;
  fx.query.trace_flags = obs::kTraceSampled;
  (void)server.handle_request(framed_query(fx.query), 7);

  EXPECT_EQ(server.slow_log().seen(), 1u);
  const auto worst = server.slow_log().worst();
  ASSERT_EQ(worst.size(), 1u);
  EXPECT_EQ(worst[0].trace_id, 0xBEEFull);
  EXPECT_EQ(worst[0].place, "hall");
  EXPECT_GT(worst[0].total_ms, 0.0);
#if VP_OBS_ENABLED
  EXPECT_FALSE(worst[0].stages.empty());
#endif

  StatsRequest req;
  req.format = StatsRequest::kFormatSlowLog;
  ByteWriter w;
  w.u8(kStatsRequest);
  w.raw(req.encode());
  const StatsResponse stats =
      StatsResponse::decode(server.handle_request(w.bytes(), 7));
  EXPECT_EQ(stats.format, StatsRequest::kFormatSlowLog);
  EXPECT_NE(stats.text.find("\"type\":\"slow_query\""), std::string::npos);
  EXPECT_NE(stats.text.find("\"trace_id\":\"000000000000beef\""),
            std::string::npos);
  EXPECT_NE(stats.text.find("\"type\":\"slow_query_summary\""),
            std::string::npos);
  EXPECT_NE(stats.text.find("\"seen\":1"), std::string::npos);
}

TEST(MapStore, RemoteLocalizerStitchesClientLinkServerLanes) {
  Rng rng(65);
  VisualPrintServer server(localizing_server());
  PlaceFixture fx = make_place_fixture(rng, {2, 3, 1.5});
  server.ingest_wardrive("hall", fx.mappings);
  fx.query.place = "hall";

  RemoteLocalizer localizer([&server](std::span<const std::uint8_t> req) {
    return server.handle_request(req, 7);
  });
  localizer.enable_tracing(1.0);
  const LocationResponse resp = localizer.localize(fx.query);
  EXPECT_NE(resp.trace_id, 0u);

  ASSERT_EQ(localizer.traces().size(), 1u);
  const obs::StitchedTrace& st = localizer.traces().front();
  EXPECT_EQ(st.trace_id, resp.trace_id);
  EXPECT_EQ(st.frame_id, fx.query.frame_id);
  ASSERT_EQ(st.link.size(), 3u);
  EXPECT_EQ(st.link[0].name, "link.rtt");
  const double rtt = st.link[0].duration_ms;
  EXPECT_GE(rtt, 0.0);
  // Inferred uplink + downlink never exceed the measured round trip.
  EXPECT_LE(st.link[1].duration_ms + st.link[2].duration_ms, rtt + 1e-9);
#if VP_OBS_ENABLED
  // Client lane saw the query encode; server lane is the echoed block,
  // placed inside the round trip on the stitched timeline.
  std::vector<std::string> client_names;
  for (const auto& s : st.client) client_names.push_back(s.name);
  EXPECT_NE(std::find(client_names.begin(), client_names.end(), "encode"),
            client_names.end());
  ASSERT_FALSE(st.server.empty());
  for (const auto& s : st.server) {
    EXPECT_GE(s.start_ms, st.link[0].start_ms - 1e-9);
  }
#endif
}

TEST(MapStore, TraceSamplingRateControlsServerEcho) {
  Rng rng(66);
  VisualPrintServer server(localizing_server());
  PlaceFixture fx = make_place_fixture(rng, {2, 3, 1.5});
  server.ingest_wardrive("hall", fx.mappings);
  fx.query.place = "hall";

  RemoteLocalizer localizer([&server](std::span<const std::uint8_t> req) {
    return server.handle_request(req, 7);
  });
  // Deterministic accumulator: at 0.5 exactly every 2nd query crosses 1.0
  // and carries the sampled bit (queries 2 and 4 of 4).
  localizer.enable_tracing(0.5);
  for (int i = 0; i < 4; ++i) (void)localizer.localize(fx.query);
  ASSERT_EQ(localizer.traces().size(), 4u);
  std::size_t echoed = 0;
  for (const auto& st : localizer.traces()) {
    EXPECT_NE(st.trace_id, 0u);  // ids flow even for unsampled queries
    if (!st.server.empty()) ++echoed;
  }
#if VP_OBS_ENABLED
  EXPECT_EQ(echoed, 2u);
#else
  EXPECT_EQ(echoed, 0u);
#endif
}

TEST(MapStore, ConcurrentTracedServingKeepsSlowLogConsistent) {
  // Mixed traced/untraced queries from many threads: every reply must
  // decode, every echo must match its query, and the slow-query log must
  // come out complete (seen == queries) and sorted without duplicates.
  VisualPrintServer server(small_server());
  {
    Rng rng(67);
    server.ingest_wardrive("hall", random_mappings(rng, 12, {0, 0, 0}));
  }
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50;
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (int tid = 0; tid < kThreads; ++tid) {
    workers.emplace_back([&server, &failed, tid] {
      Rng rng(100 + static_cast<std::uint64_t>(tid));
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        FingerprintQuery q;
        q.place = "hall";
        q.frame_id = static_cast<std::uint32_t>(i);
        // Every other query traced + sampled; the rest stay v2.
        if (i % 2 == 0) {
          q.trace_id = static_cast<std::uint64_t>(tid) * kPerThread + i + 1;
          q.trace_flags = obs::kTraceSampled;
        }
        q.features.push_back(make_feature(rng));
        try {
          const Bytes reply = server.handle_request(framed_query(q), 7);
          const LocationResponse resp = LocationResponse::decode(reply);
          if (resp.trace_id != q.trace_id) failed = true;
        } catch (...) {
          failed = true;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(server.slow_log().seen(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto worst = server.slow_log().worst();
  EXPECT_LE(worst.size(), server.slow_log().capacity());
  EXPECT_TRUE(std::is_sorted(
      worst.begin(), worst.end(),
      [](const auto& a, const auto& b) { return a.total_ms > b.total_ms; }));
  for (const auto& q : worst) EXPECT_GT(q.total_ms, 0.0);
}

TEST(Retrieval, PredictsCorrectScene) {
  RetrievalConfig cfg;
  cfg.min_votes = 3;
  SceneDatabase db(cfg);
  Rng rng(13);
  std::vector<std::vector<Feature>> scenes;
  for (int s = 0; s < 4; ++s) {
    std::vector<Feature> fs;
    for (int i = 0; i < 25; ++i) fs.push_back(make_feature(rng));
    db.add_image(fs, s);
    scenes.push_back(std::move(fs));
  }
  for (int s = 0; s < 4; ++s) {
    for (auto kind : {MatcherKind::kLsh, MatcherKind::kBruteForce}) {
      const auto pred = db.predict(scenes[static_cast<std::size_t>(s)], kind);
      ASSERT_TRUE(pred.has_value());
      EXPECT_EQ(*pred, s);
    }
  }
}

TEST(Retrieval, AbstainsOnForeignQuery) {
  RetrievalConfig cfg;
  cfg.min_votes = 3;
  SceneDatabase db(cfg);
  Rng rng(14);
  std::vector<Feature> fs;
  for (int i = 0; i < 25; ++i) fs.push_back(make_feature(rng));
  db.add_image(fs, 0);
  std::vector<Feature> foreign;
  for (int i = 0; i < 25; ++i) foreign.push_back(make_feature(rng));
  EXPECT_FALSE(db.predict(foreign, MatcherKind::kBruteForce).has_value());
}

TEST(Retrieval, DistractorsGetNoVotes) {
  SceneDatabase db{RetrievalConfig{}};
  Rng rng(15);
  std::vector<Feature> distractor;
  for (int i = 0; i < 25; ++i) distractor.push_back(make_feature(rng));
  db.add_image(distractor, -1);  // distractor label
  EXPECT_EQ(db.scene_count(), 0);
  const auto votes = db.votes(distractor, MatcherKind::kLsh);
  EXPECT_TRUE(votes.empty());
}

TEST(Retrieval, PrecisionRecallDefinitions) {
  // 3 scenes; craft known confusion.
  using O = std::optional<std::int32_t>;
  const std::vector<O> truth{0, 0, 1, 1, 2, std::nullopt};
  const std::vector<O> pred{0, 1, 1, std::nullopt, 2, 2};
  const auto pr = precision_recall(truth, pred, 3);
  ASSERT_EQ(pr.precision.size(), 3u);
  // Scene 0: P = {0}, V = {0,1}: precision 1, recall 0.5.
  EXPECT_DOUBLE_EQ(pr.precision[0], 1.0);
  EXPECT_DOUBLE_EQ(pr.recall[0], 0.5);
  // Scene 1: P = {1,2}, V = {2,3}: tp=1 -> precision 0.5, recall 0.5.
  EXPECT_DOUBLE_EQ(pr.precision[1], 0.5);
  EXPECT_DOUBLE_EQ(pr.recall[1], 0.5);
  // Scene 2: P = {4,5}, V = {4}: precision 0.5, recall 1.
  EXPECT_DOUBLE_EQ(pr.precision[2], 0.5);
  EXPECT_DOUBLE_EQ(pr.recall[2], 1.0);
}

TEST(Retrieval, PrecisionRecallSizeMismatchThrows) {
  using O = std::optional<std::int32_t>;
  const std::vector<O> a{0};
  const std::vector<O> b{0, 1};
  EXPECT_THROW(precision_recall(a, b, 1), InvalidArgument);
}

TEST(SessionStats, CumulativeUploadMonotone) {
  SessionStats stats;
  stats.uploads = {{0, 0, 1.0, 100}, {0, 0, 0.5, 50}, {0, 0, 2.0, 200}};
  const auto curve = stats.cumulative_upload();
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].second, 50);
  EXPECT_DOUBLE_EQ(curve[1].second, 150);
  EXPECT_DOUBLE_EQ(curve[2].second, 350);
  EXPECT_LT(curve[0].first, curve[1].first);
}

}  // namespace
}  // namespace vp
