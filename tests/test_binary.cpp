// Tests for the paper-§5 extension: rotated-BRIEF binary descriptors and
// the bit-sampling-LSH binary uniqueness oracle.
#include <gtest/gtest.h>

#include "features/brief.hpp"
#include "features/sift.hpp"
#include "hashing/binary_oracle.hpp"
#include "imaging/filters.hpp"
#include "scene/texture.hpp"
#include "util/rng.hpp"

namespace vp {
namespace {

BinaryDescriptor random_binary(Rng& rng) {
  BinaryDescriptor d;
  for (auto& w : d) w = rng.next_u64();
  return d;
}

BinaryDescriptor flip_bits(const BinaryDescriptor& d, int n, Rng& rng) {
  BinaryDescriptor out = d;
  for (int i = 0; i < n; ++i) {
    const auto bit = rng.uniform_u64(kBinaryDescriptorBits);
    out[bit / 64] ^= (1ULL << (bit % 64));
  }
  return out;
}

TEST(Hamming, DistanceBasics) {
  BinaryDescriptor a{}, b{};
  EXPECT_EQ(hamming_distance(a, b), 0u);
  b[0] = 0b1011;
  EXPECT_EQ(hamming_distance(a, b), 3u);
  b[3] = ~0ULL;
  EXPECT_EQ(hamming_distance(a, b), 67u);
  EXPECT_EQ(hamming_distance(b, a), 67u);
}

TEST(Brief, DescribesAllKeypoints) {
  Rng rng(1);
  const ImageF img = painting_texture(200, 150, rng);
  const auto kps = sift_detect_keypoints(img);
  ASSERT_GT(kps.size(), 10u);
  const auto features = brief_describe(img, kps);
  EXPECT_EQ(features.size(), kps.size());
}

TEST(Brief, Deterministic) {
  Rng rng(2);
  const ImageF img = painting_texture(160, 120, rng);
  const auto kps = sift_detect_keypoints(img);
  const auto a = brief_describe(img, kps);
  const auto b = brief_describe(img, kps);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].descriptor, b[i].descriptor);
  }
}

TEST(Brief, DescriptorsAreInformative) {
  // Bits should be roughly balanced across a population (not all 0/1).
  Rng rng(3);
  const ImageF img = painting_texture(240, 180, rng);
  const auto features = orb_like_detect(img, SiftConfig{});
  ASSERT_GT(features.size(), 20u);
  std::size_t ones = 0;
  for (const auto& f : features) {
    for (auto w : f.descriptor) ones += static_cast<std::size_t>(std::popcount(w));
  }
  const double frac = static_cast<double>(ones) /
                      (static_cast<double>(features.size()) * kBinaryDescriptorBits);
  EXPECT_GT(frac, 0.25);
  EXPECT_LT(frac, 0.75);
}

TEST(Brief, RobustToNoiseMatchesCounterpart) {
  Rng rng(4);
  const ImageF img = painting_texture(200, 160, rng);
  ImageF noisy = img;
  add_gaussian_noise(noisy, 2.0, rng);
  const auto fa = orb_like_detect(img, SiftConfig{});
  const auto fb = orb_like_detect(noisy, SiftConfig{});
  int good = 0, total = 0;
  for (const auto& a : fa) {
    for (const auto& b : fb) {
      if (std::abs(a.keypoint.x - b.keypoint.x) < 2 &&
          std::abs(a.keypoint.y - b.keypoint.y) < 2 &&
          std::abs(a.keypoint.orientation - b.keypoint.orientation) < 0.3) {
        ++total;
        // Random pairs average 128 bits apart; counterparts must be close.
        if (hamming_distance(a.descriptor, b.descriptor) < 70) ++good;
        break;
      }
    }
  }
  ASSERT_GT(total, 10);
  EXPECT_GT(static_cast<double>(good) / total, 0.7);
}

BinaryOracleConfig small_config() {
  BinaryOracleConfig cfg;
  cfg.capacity = 20'000;
  return cfg;
}

TEST(BinaryOracle, UnseenScoresZero) {
  BinaryUniquenessOracle oracle(small_config());
  Rng rng(5);
  EXPECT_EQ(oracle.count(random_binary(rng)), 0u);
}

TEST(BinaryOracle, RepeatedInsertCounts) {
  BinaryUniquenessOracle oracle(small_config());
  Rng rng(6);
  const BinaryDescriptor d = random_binary(rng);
  for (int i = 0; i < 6; ++i) oracle.insert(d);
  EXPECT_GE(oracle.count(d), 5u);
  EXPECT_LE(oracle.count(d), 7u);
}

TEST(BinaryOracle, NearbyDescriptorShares) {
  BinaryUniquenessOracle oracle(small_config());
  Rng rng(7);
  const BinaryDescriptor d = random_binary(rng);
  for (int i = 0; i < 12; ++i) oracle.insert(flip_bits(d, 3, rng));
  // A probe within a few bits should read a substantial count.
  EXPECT_GE(oracle.count(flip_bits(d, 3, rng)), 4u);
}

TEST(BinaryOracle, CommonOutranksUnique) {
  BinaryUniquenessOracle oracle(small_config());
  Rng rng(8);
  const BinaryDescriptor common = random_binary(rng);
  const BinaryDescriptor unique = random_binary(rng);
  for (int i = 0; i < 40; ++i) oracle.insert(flip_bits(common, 2, rng));
  oracle.insert(unique);
  EXPECT_GT(oracle.count(common), oracle.count(unique) + 5);
}

TEST(BinaryOracle, MultiprobeHelps) {
  BinaryOracleConfig with = small_config();
  BinaryOracleConfig without = small_config();
  without.multiprobe = false;
  BinaryUniquenessOracle a(with), b(without);
  Rng rng(9);
  const BinaryDescriptor base = random_binary(rng);
  for (int i = 0; i < 15; ++i) {
    const auto d = flip_bits(base, 4, rng);
    a.insert(d);
    b.insert(d);
  }
  int hits_with = 0, hits_without = 0;
  for (int i = 0; i < 40; ++i) {
    const auto q = flip_bits(base, 4, rng);
    hits_with += a.count(q) > 0;
    hits_without += b.count(q) > 0;
  }
  EXPECT_GE(hits_with, hits_without);
}

TEST(BinaryOracle, EndToEndWithBriefFeatures) {
  // The §5 pipeline swap: same detector, binary description, binary
  // oracle; repeated scene content must outrank unique content.
  Rng rng(10);
  const ImageF unique_img = painting_texture(200, 150, rng);
  const ImageF common_img = checkerboard_texture(200, 150, 20, 120, 180, rng);

  const auto unique_feats = orb_like_detect(unique_img, SiftConfig{});
  const auto common_feats = orb_like_detect(common_img, SiftConfig{});
  ASSERT_GT(unique_feats.size(), 5u);
  ASSERT_GT(common_feats.size(), 5u);

  BinaryUniquenessOracle oracle(small_config());
  // "Wardrive" the checkerboard 20 times (repeated floor tiles across the
  // building) and the painting once.
  for (int rep = 0; rep < 20; ++rep) {
    for (const auto& f : common_feats) oracle.insert(f.descriptor);
  }
  for (const auto& f : unique_feats) oracle.insert(f.descriptor);

  double common_score = 0, unique_score = 0;
  for (const auto& f : common_feats) common_score += oracle.count(f.descriptor);
  for (const auto& f : unique_feats) unique_score += oracle.count(f.descriptor);
  common_score /= static_cast<double>(common_feats.size());
  unique_score /= static_cast<double>(unique_feats.size());
  EXPECT_GT(common_score, unique_score * 2);
}

}  // namespace
}  // namespace vp
