// Tests for the observability layer: registry metrics under concurrency,
// span nesting and per-frame traces, exporter golden output, and the
// histogram percentile estimate cross-checked against vp::percentile.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/slow_log.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

// The registry is process-global; each test uses unique metric names (and
// resets them up front) so the tests stay order-independent.

TEST(ObsCounter, AddAndValue) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, ConcurrentAddsFromThreadPoolExactTotal) {
  obs::Counter c;
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kAddsPerTask = 10'000;
  pool.parallel_for(kTasks, [&](std::size_t) {
    for (std::size_t i = 0; i < kAddsPerTask; ++i) c.add(1);
  });
  EXPECT_EQ(c.value(), kTasks * kAddsPerTask);
}

TEST(ObsCounter, ConcurrentAddsFromRawThreadsExactTotal) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr std::size_t kAdds = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (std::size_t j = 0; j < kAdds; ++j) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(ObsGauge, SetAndAdd) {
  obs::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(ObsHistogram, BucketAssignment) {
  obs::LatencyHistogram h(obs::HistogramBuckets{{1.0, 10.0, 100.0}});
  h.record(0.5);     // <= 1
  h.record(1.0);     // boundary counts into its own bucket (le semantics)
  h.record(5.0);     // <= 10
  h.record(1000.0);  // +Inf
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_DOUBLE_EQ(h.total_sum(), 1006.5);
}

TEST(ObsHistogram, ConcurrentRecordsExactTotals) {
  obs::LatencyHistogram h(obs::HistogramBuckets::latency_ms());
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 32;
  constexpr std::size_t kRecords = 5'000;
  pool.parallel_for(kTasks, [&](std::size_t task) {
    for (std::size_t i = 0; i < kRecords; ++i) {
      h.record(static_cast<double>(task % 7) + 0.1);
    }
  });
  EXPECT_EQ(h.total_count(), kTasks * kRecords);
  std::uint64_t bucket_total = 0;
  for (const auto c : h.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, kTasks * kRecords);
}

TEST(ObsHistogram, PercentileMatchesVpPercentileWithinBucketResolution) {
  // Cross-check the bucket-interpolated estimate against the exact sample
  // percentile: they must agree to within the local bucket resolution.
  obs::LatencyHistogram h(obs::HistogramBuckets::exponential(0.1, 1.5, 30));
  std::vector<double> samples;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double v = std::abs(rng.gaussian(20.0, 12.0)) + 0.2;
    samples.push_back(v);
    h.record(v);
  }
  const auto& bounds = h.upper_bounds();
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double exact = percentile(samples, p);
    const double est = h.percentile(p);
    // The two rank conventions may land in adjacent buckets, so allow a
    // couple of widths of the bucket covering the exact value.
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), exact);
    const double hi = it == bounds.end() ? bounds.back() : *it;
    const double lo = it == bounds.begin() ? 0.0 : *(it - 1);
    EXPECT_NEAR(est, exact, 2.5 * (hi - lo) + 1e-9) << "p" << p;
  }
}

TEST(ObsHistogram, PercentileEmptySafe) {
  obs::LatencyHistogram h(obs::HistogramBuckets::latency_ms());
  EXPECT_EQ(h.percentile(50), 0.0);  // no throw, unlike vp::percentile
  const std::vector<std::uint64_t> counts;
  EXPECT_EQ(obs::estimate_percentile({}, counts, 99), 0.0);
}

TEST(ObsHistogram, PercentileInterpolatesWithinBucket) {
  obs::LatencyHistogram h(obs::HistogramBuckets{{10.0, 20.0}});
  for (int i = 0; i < 4; ++i) h.record(15.0);  // all in (10, 20]
  // Rank 2 of 4 sits half-way through the occupied bucket.
  EXPECT_DOUBLE_EQ(h.percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 20.0);
}

TEST(ObsHistogram, PercentileInfBucketReportsLastFiniteBound) {
  obs::LatencyHistogram h(obs::HistogramBuckets{{1.0, 2.0}});
  h.record(50.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 2.0);
}

TEST(ObsBuckets, ExponentialLayout) {
  const auto b = obs::HistogramBuckets::exponential(1.0, 2.0, 4);
  ASSERT_EQ(b.upper_bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(b.upper_bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(b.upper_bounds[3], 8.0);
  EXPECT_THROW(obs::HistogramBuckets::exponential(0.0, 2.0, 4),
               InvalidArgument);
}

TEST(ObsRegistry, SameNameSameMetricAcrossThreads) {
  auto& reg = obs::Registry::global();
  reg.counter("reg.same").reset();
  ThreadPool pool(4);
  pool.parallel_for(16, [&](std::size_t) {
    // Every task resolves by name: exercises the shared-lock fast path and
    // the create-once slow path racing on first use.
    obs::Registry::global().counter("reg.same").add(1);
  });
  EXPECT_EQ(reg.counter("reg.same").value(), 16u);
}

TEST(ObsRegistry, SnapshotSortedAndComplete) {
  auto& reg = obs::Registry::global();
  reg.counter("snap.b").reset();
  reg.counter("snap.a").reset();
  reg.counter("snap.a").add(3);
  reg.gauge("snap.g").set(1.5);
  reg.histogram("snap.h").reset();
  reg.histogram("snap.h").record(0.07);

  const auto snap = reg.snapshot();
  std::vector<std::string> names;
  for (const auto& c : snap.counters) names.push_back(c.name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  bool found_a = false;
  for (const auto& c : snap.counters) {
    if (c.name == "snap.a") {
      found_a = true;
      EXPECT_EQ(c.value, 3u);
    }
  }
  EXPECT_TRUE(found_a);
  bool found_h = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "snap.h") {
      found_h = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_DOUBLE_EQ(h.sum, 0.07);
      EXPECT_EQ(h.counts.size(), h.upper_bounds.size() + 1);
    }
  }
  EXPECT_TRUE(found_h);
}

TEST(ObsTrace, SpanNestingParentsAndOrder) {
  obs::FrameTrace trace;
  {
    obs::Span outer("t.outer");
    {
      obs::Span inner("t.inner");
      { obs::Span leaf("t.leaf"); }
    }
    obs::Span sibling("t.sibling");
  }
  const auto& recs = trace.records();
  ASSERT_EQ(recs.size(), 4u);
  // Records appear in open order.
  EXPECT_STREQ(recs[0].name, "t.outer");
  EXPECT_STREQ(recs[1].name, "t.inner");
  EXPECT_STREQ(recs[2].name, "t.leaf");
  EXPECT_STREQ(recs[3].name, "t.sibling");
  EXPECT_EQ(recs[0].parent, -1);
  EXPECT_EQ(recs[1].parent, 0);
  EXPECT_EQ(recs[2].parent, 1);
  EXPECT_EQ(recs[3].parent, 0);
  EXPECT_EQ(recs[0].depth, 0);
  EXPECT_EQ(recs[1].depth, 1);
  EXPECT_EQ(recs[2].depth, 2);
  EXPECT_EQ(recs[3].depth, 1);
  for (const auto& r : recs) {
    EXPECT_GE(r.duration_ms, 0.0);
    EXPECT_GE(r.start_ms, 0.0);
  }
  // An enclosing span covers at least its children's time.
  EXPECT_GE(recs[0].duration_ms, recs[1].duration_ms);
  EXPECT_GE(recs[1].duration_ms, recs[2].duration_ms);
}

TEST(ObsTrace, StageTimingsAccumulateRepeats) {
  obs::FrameTrace trace;
  { obs::Span a("t.rep"); }
  { obs::Span b("t.rep"); }
  { obs::Span c("t.other"); }
  const auto stages = trace.stage_timings();
  ASSERT_EQ(stages.entries().size(), 2u);
  EXPECT_TRUE(stages.contains("t.rep"));
  EXPECT_TRUE(stages.contains("t.other"));
  EXPECT_EQ(stages.value("missing"), 0.0);  // empty-safe lookup
  EXPECT_GE(stages.value("t.rep"), 0.0);
}

TEST(ObsTrace, StageTimingsScale) {
  obs::StageTimings st;
  st.add("a", 2.0);
  st.add("b", 3.0);
  st.add("a", 1.0);  // accumulates
  st.scale(10.0);
  EXPECT_DOUBLE_EQ(st.value("a"), 30.0);
  EXPECT_DOUBLE_EQ(st.value("b"), 30.0);
}

TEST(ObsTrace, SpansWithoutTraceRecordHistogramOnly) {
  auto& reg = obs::Registry::global();
  reg.histogram("stage.t.free").reset();
  { obs::Span s("t.free"); }
  EXPECT_EQ(reg.histogram("stage.t.free").total_count(), 1u);
}

TEST(ObsTrace, WorkerThreadSpansDontJoinCoordinatorTrace) {
  // Pool workers have no active trace of their own: their spans must go
  // histogram-only, never into the coordinating thread's frame trace.
  obs::FrameTrace trace;
  ThreadPool pool(3);
  pool.parallel_for(8, [&](std::size_t) { obs::Span s("t.worker"); });
  for (const auto& rec : trace.records()) {
    EXPECT_STRNE(rec.name, "t.worker");
  }
}

TEST(ObsTrace, NestedTracesShadowAndRestore) {
  obs::FrameTrace outer;
  { obs::Span a("t.shadow.outer"); }
  {
    obs::FrameTrace inner;
    { obs::Span b("t.shadow.inner"); }
    ASSERT_EQ(inner.records().size(), 1u);
    EXPECT_STREQ(inner.records()[0].name, "t.shadow.inner");
  }
  { obs::Span c("t.shadow.outer2"); }
  ASSERT_EQ(outer.records().size(), 2u);
  EXPECT_STREQ(outer.records()[0].name, "t.shadow.outer");
  EXPECT_STREQ(outer.records()[1].name, "t.shadow.outer2");
}

TEST(ObsExport, JsonLinesGolden) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"client.frames", 3});
  snap.gauges.push_back({"link.mbps", 8.5});
  snap.histograms.push_back({"stage.demo", {1.0, 10.0}, {1, 1, 0}, 2, 3.05});
  const std::string out = obs::to_json_lines(snap);
  EXPECT_EQ(out,
            "{\"type\":\"counter\",\"name\":\"client.frames\",\"value\":3}\n"
            "{\"type\":\"gauge\",\"name\":\"link.mbps\",\"value\":8.5}\n"
            "{\"type\":\"histogram\",\"name\":\"stage.demo\",\"count\":2,"
            "\"sum_ms\":3.05,\"p50_ms\":1,\"p90_ms\":10,\"p99_ms\":10,"
            "\"buckets\":[[1,1],[10,1],[\"+inf\",0]]}\n");
}

TEST(ObsExport, JsonLinesBenchTag) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"c", 1});
  EXPECT_EQ(obs::to_json_lines(snap, "fig14"),
            "{\"bench\":\"fig14\",\"type\":\"counter\",\"name\":\"c\","
            "\"value\":1}\n");
}

TEST(ObsExport, PrometheusGolden) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"client.frames", 3});
  snap.gauges.push_back({"link.mbps", 8.5});
  snap.histograms.push_back({"stage.demo", {1.0, 10.0}, {1, 1, 0}, 2, 3.05});
  const std::string out = obs::to_prometheus(snap);
  EXPECT_EQ(out,
            "# TYPE vp_client_frames_total counter\n"
            "vp_client_frames_total 3\n"
            "# TYPE vp_link_mbps gauge\n"
            "vp_link_mbps 8.5\n"
            "# TYPE vp_stage_demo_ms histogram\n"
            "vp_stage_demo_ms_bucket{le=\"1\"} 1\n"
            "vp_stage_demo_ms_bucket{le=\"10\"} 2\n"
            "vp_stage_demo_ms_bucket{le=\"+Inf\"} 2\n"
            "vp_stage_demo_ms_sum 3.05\n"
            "vp_stage_demo_ms_count 2\n");
}

TEST(ObsExport, JsonEscapesQuotesInNames) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"we\"ird", 1});
  const std::string out = obs::to_json_lines(snap);
  EXPECT_NE(out.find("\"we\\\"ird\""), std::string::npos);
}

TEST(ObsMacros, CompileInBothConfigurations) {
  // Under VP_OBS=OFF these expand to no-ops; under ON they hit the global
  // registry. Either way this must compile and run cleanly.
#if VP_OBS_ENABLED
  obs::Registry::global().counter("macro.count").reset();
#endif
  VP_OBS_COUNT("macro.count", 2);
  VP_OBS_GAUGE_SET("macro.gauge", 1.0);
  VP_OBS_OBSERVE("macro.hist", 0.5);
  VP_OBS_SPAN("macro.span");
#if VP_OBS_ENABLED
  EXPECT_EQ(obs::Registry::global().counter("macro.count").value(), 2u);
#else
  SUCCEED();
#endif
}

TEST(ObsHistogram, CumulativeBucketsMonotonicUnderConcurrentObserves) {
  // A scraper racing a writer must never see a cumulative bucket series go
  // backwards between scrapes (Prometheus counters are monotone), and the
  // quiescent totals must reconcile exactly.
  obs::LatencyHistogram h(obs::HistogramBuckets::exponential(0.5, 2.0, 8));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(3);
    while (!stop.load(std::memory_order_relaxed)) {
      h.record(rng.uniform(0.0, 200.0));
    }
  });
  std::vector<std::uint64_t> prev(h.upper_bounds().size() + 1, 0);
  for (int scrape = 0; scrape < 200; ++scrape) {
    const auto counts = h.bucket_counts();
    ASSERT_EQ(counts.size(), prev.size());
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
      cum += counts[b];
      EXPECT_GE(cum, prev[b]) << "bucket " << b << " went backwards";
      prev[b] = cum;
    }
  }
  stop = true;
  writer.join();
  std::uint64_t total = 0;
  for (const auto c : h.bucket_counts()) total += c;
  EXPECT_EQ(total, h.total_count());
}

TEST(ObsExport, PrometheusSanitizationCollisionsSurfaceBothSeries) {
  // "col.a" and "col_a" sanitize to the same Prometheus name. The exporter
  // renders the snapshot verbatim — both series appear, neither is merged
  // or silently dropped; the collision is the operator's to resolve (and
  // this test pins that contract so a future dedup is a deliberate change).
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"col.a", 1});
  snap.counters.push_back({"col_a", 2});
  const std::string out = obs::to_prometheus(snap);
  EXPECT_NE(out.find("vp_col_a_total 1\n"), std::string::npos);
  EXPECT_NE(out.find("vp_col_a_total 2\n"), std::string::npos);
  std::size_t series = 0;
  for (std::size_t pos = 0;
       (pos = out.find("# TYPE vp_col_a_total counter\n", pos)) !=
       std::string::npos;
       ++pos) {
    ++series;
  }
  EXPECT_EQ(series, 2u);
}

// ---------------------------------------------------------------------------
// Trace propagation plumbing: ids, notes, stitching, the Chrome exporter.

TEST(ObsTraceId, NonZeroAndUniqueAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr std::size_t kPerThread = 10'000;
  std::vector<std::vector<std::uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] {
      ids[static_cast<std::size_t>(t)].reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        ids[static_cast<std::size_t>(t)].push_back(obs::next_trace_id());
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<std::uint64_t> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  EXPECT_TRUE(std::none_of(all.begin(), all.end(),
                           [](std::uint64_t id) { return id == 0; }));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST(ObsTrace, NotesAttachToActiveTrace) {
  obs::FrameTrace trace;
  obs::trace_note("server.candidates", 42.0);
  obs::trace_note("server.clustered", 7.0);
  ASSERT_EQ(trace.notes().size(), 2u);
  EXPECT_STREQ(trace.notes()[0].first, "server.candidates");
  EXPECT_DOUBLE_EQ(trace.notes()[0].second, 42.0);
  EXPECT_STREQ(trace.notes()[1].first, "server.clustered");
}

TEST(ObsTrace, NotesWithoutActiveTraceAreDropped) {
  obs::trace_note("orphan.note", 1.0);  // must not crash or leak anywhere
  obs::FrameTrace trace;
  EXPECT_TRUE(trace.notes().empty());
}

TEST(ObsTrace, ToStitchedSpansScalesAndOffsets) {
  std::vector<obs::SpanRecord> recs(2);
  recs[0].name = "a";
  recs[0].parent = -1;
  recs[0].start_ms = 1.0;
  recs[0].duration_ms = 2.0;
  recs[1].name = "b";
  recs[1].parent = 0;
  recs[1].start_ms = 1.5;
  recs[1].duration_ms = 0.5;
  const auto spans = obs::to_stitched_spans(recs, /*scale=*/10.0,
                                            /*offset_ms=*/100.0);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_DOUBLE_EQ(spans[0].start_ms, 110.0);
  EXPECT_DOUBLE_EQ(spans[0].duration_ms, 20.0);
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_DOUBLE_EQ(spans[1].start_ms, 115.0);
  EXPECT_DOUBLE_EQ(spans[1].duration_ms, 5.0);
}

TEST(ObsExport, ChromeTraceLanesAndEvents) {
  obs::StitchedTrace st;
  st.trace_id = 0xABC;
  st.frame_id = 7;
  st.place = "atrium";
  st.base_ms = 10.0;
  st.client = {{"encode", -1, 0.0, 1.5}};
  st.link = {{"link.rtt", -1, 1.5, 4.0}};
  st.server = {{"decode", -1, 2.0, 0.5}};
  const std::string out = obs::to_chrome_trace(std::span(&st, 1));

  EXPECT_NE(out.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Three lane-naming metadata events, one complete event per lane.
  for (const char* lane : {"client", "link", "server"}) {
    EXPECT_NE(out.find("\"name\":\"thread_name\",\"args\":{\"name\":\"" +
                       std::string(lane) + "\"}"),
              std::string::npos);
  }
  std::size_t x_events = 0;
  for (std::size_t pos = 0;
       (pos = out.find("\"ph\":\"X\"", pos)) != std::string::npos; ++pos) {
    ++x_events;
  }
  EXPECT_EQ(x_events, 3u);
  // Timestamps are µs: base 10 ms + start 2 ms = 12000 µs on the server
  // lane (tid 3), duration 500 µs.
  EXPECT_NE(out.find("\"tid\":3,\"name\":\"decode\",\"ts\":12000.000,"
                     "\"dur\":500.000"),
            std::string::npos);
  // Every event carries the zero-padded hex trace id and the place.
  EXPECT_NE(out.find("\"trace_id\":\"0000000000000abc\""), std::string::npos);
  EXPECT_NE(out.find("\"place\":\"atrium\""), std::string::npos);
}

TEST(ObsExport, ChromeTraceEmptyInputStillWellFormed) {
  const std::string out = obs::to_chrome_trace({});
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(out.find("\"ph\":\"X\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Slow-query log: worst-N retention, thresholds, JSON rendering, races.

obs::SlowQuery make_slow(std::uint64_t id, double total_ms) {
  obs::SlowQuery q;
  q.trace_id = id;
  q.frame_id = static_cast<std::uint32_t>(id);
  q.place = "atrium";
  q.total_ms = total_ms;
  q.stages = {{"decode", total_ms / 2}, {"localize.solve", total_ms / 2}};
  q.notes = {{"server.candidates", 12.0}};
  return q;
}

TEST(ObsSlowLog, RetainsWorstNSortedDescending) {
  obs::SlowQueryLog log(4);
  EXPECT_EQ(log.capacity(), 4u);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    log.record(make_slow(i, static_cast<double>(i)));
  }
  EXPECT_EQ(log.seen(), 10u);
  const auto worst = log.worst();
  ASSERT_EQ(worst.size(), 4u);
  EXPECT_DOUBLE_EQ(worst[0].total_ms, 10.0);
  EXPECT_DOUBLE_EQ(worst[1].total_ms, 9.0);
  EXPECT_DOUBLE_EQ(worst[2].total_ms, 8.0);
  EXPECT_DOUBLE_EQ(worst[3].total_ms, 7.0);
  // Threshold tracks the weakest retained entry once full.
  EXPECT_DOUBLE_EQ(log.threshold_ms(), 7.0);
}

TEST(ObsSlowLog, FastPathRejectCountsButDoesNotRetain) {
  obs::SlowQueryLog log(2);
  log.record(make_slow(1, 50.0));
  log.record(make_slow(2, 60.0));
  log.record(make_slow(3, 1.0));  // below threshold: counted, not kept
  EXPECT_EQ(log.seen(), 3u);
  const auto worst = log.worst();
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_DOUBLE_EQ(worst[1].total_ms, 50.0);
}

TEST(ObsSlowLog, JsonLinesCarryStagesNotesAndSummary) {
  obs::SlowQueryLog log(4);
  obs::SlowQuery q = make_slow(0xBEEF, 12.5);
  q.error_code = 3;
  log.record(std::move(q));
  const std::string out = log.to_json_lines();
  EXPECT_NE(out.find("\"type\":\"slow_query\""), std::string::npos);
  EXPECT_NE(out.find("\"trace_id\":\"000000000000beef\""), std::string::npos);
  EXPECT_NE(out.find("\"place\":\"atrium\""), std::string::npos);
  EXPECT_NE(out.find("\"error_code\":3"), std::string::npos);
  EXPECT_NE(out.find("[\"decode\",6.25]"), std::string::npos);
  EXPECT_NE(out.find("[\"server.candidates\",12]"), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"slow_query_summary\""), std::string::npos);
  EXPECT_NE(out.find("\"retained\":1"), std::string::npos);
  EXPECT_NE(out.find("\"seen\":1"), std::string::npos);
}

TEST(ObsSlowLog, ConcurrentRecordsKeepInvariants) {
  // Distinct totals from many threads: the retained set must be exactly
  // the top-N, the global maximum always survives, and seen() counts all.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 2'000;
  obs::SlowQueryLog log(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(t) * kPerThread + i + 1;
        // Distinct totals; ordering across threads is scrambled.
        log.record(make_slow(id, static_cast<double>(id) +
                                     rng.uniform(0.0, 0.4)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.seen(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto worst = log.worst();
  ASSERT_EQ(worst.size(), 16u);
  EXPECT_TRUE(std::is_sorted(
      worst.begin(), worst.end(),
      [](const auto& a, const auto& b) { return a.total_ms > b.total_ms; }));
  // The largest id carries the largest total and must have been retained.
  EXPECT_EQ(worst.front().trace_id,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  for (const auto& q : worst) {
    EXPECT_GE(q.total_ms, log.threshold_ms());
  }
}

TEST(ObsStats, EmptySafeQuantiles) {
  // The documented empty-safe paths next to the throwing ones.
  const EmpiricalCdf empty;
  EXPECT_THROW(empty.quantile(0.5), InvalidArgument);
  EXPECT_DOUBLE_EQ(empty.quantile_or(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile_or(0.5, -1.0), -1.0);

  const std::vector<double> none;
  EXPECT_THROW(percentile(none, 50), InvalidArgument);
  EXPECT_DOUBLE_EQ(percentile_or(none, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile_or(none, 50, 7.0), 7.0);

  const std::vector<double> some{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile_or(some, 50), percentile(some, 50));
  const EmpiricalCdf cdf(some);
  EXPECT_DOUBLE_EQ(cdf.quantile_or(0.5), cdf.quantile(0.5));
}

}  // namespace
}  // namespace vp
