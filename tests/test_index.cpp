#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "features/distance.hpp"
#include "index/brute_force.hpp"
#include "index/lsh_index.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace vp {
namespace {

Descriptor random_descriptor(Rng& rng) {
  Descriptor d;
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.uniform_u64(80));
  return d;
}

Descriptor perturb(const Descriptor& d, Rng& rng, int magnitude) {
  Descriptor out = d;
  for (auto& v : out) {
    const int nv = static_cast<int>(v) +
                   static_cast<int>(rng.uniform_int(-magnitude, magnitude));
    v = static_cast<std::uint8_t>(std::clamp(nv, 0, 255));
  }
  return out;
}

TEST(LshIndex, InsertAssignsSequentialIds) {
  LshIndex index;
  Rng rng(1);
  EXPECT_EQ(index.insert(random_descriptor(rng)), 0u);
  EXPECT_EQ(index.insert(random_descriptor(rng)), 1u);
  EXPECT_EQ(index.size(), 2u);
}

TEST(LshIndex, ExactQueryFindsSelf) {
  LshIndex index;
  Rng rng(2);
  std::vector<Descriptor> db;
  for (int i = 0; i < 200; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  int found = 0;
  for (int i = 0; i < 50; ++i) {
    const auto matches = index.query(db[static_cast<std::size_t>(i * 4)], 1);
    if (!matches.empty() && matches[0].distance2 == 0) ++found;
  }
  EXPECT_GE(found, 48);  // LSH may rarely miss, never often
}

TEST(LshIndex, NearQueryRecallVsBruteForce) {
  LshIndex index;
  Rng rng(3);
  std::vector<Descriptor> db;
  for (int i = 0; i < 300; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  const BruteForceMatcher brute(db);
  int agree = 0, trials = 40;
  for (int i = 0; i < trials; ++i) {
    const Descriptor q = perturb(db[static_cast<std::size_t>(i * 7)], rng, 2);
    const auto lsh_match = index.query(q, 1);
    const Match exact = brute.nearest(q);
    if (!lsh_match.empty() && lsh_match[0].id == exact.id) ++agree;
  }
  EXPECT_GT(agree, trials * 7 / 10);
}

TEST(LshIndex, KnnSortedAscending) {
  LshIndex index;
  Rng rng(4);
  const Descriptor base = random_descriptor(rng);
  for (int i = 0; i < 50; ++i) index.insert(perturb(base, rng, 3));
  const auto matches = index.query(base, 10);
  ASSERT_GE(matches.size(), 2u);
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i].distance2, matches[i - 1].distance2);
  }
}

TEST(LshIndex, MultiprobeImprovesRecall) {
  LshIndexConfig with;
  with.multiprobe = true;
  LshIndexConfig without;
  without.multiprobe = false;
  LshIndex a(with), b(without);
  Rng rng(5);
  std::vector<Descriptor> db;
  for (int i = 0; i < 200; ++i) {
    db.push_back(random_descriptor(rng));
    a.insert(db.back());
    b.insert(db.back());
  }
  int hits_a = 0, hits_b = 0;
  for (int i = 0; i < 60; ++i) {
    const Descriptor q = perturb(db[static_cast<std::size_t>(i * 3)], rng, 3);
    hits_a += !a.query(q, 1).empty();
    hits_b += !b.query(q, 1).empty();
  }
  EXPECT_GE(hits_a, hits_b);
}

TEST(LshIndex, MemoryGrowsWithReplication) {
  LshIndexConfig small;
  small.lsh.tables = 2;
  LshIndexConfig big;
  big.lsh.tables = 20;
  LshIndex a(small), b(big);
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const Descriptor d = random_descriptor(rng);
    a.insert(d);
    b.insert(d);
  }
  // The Fig. 15 observation: more tables -> multiplicatively more memory.
  EXPECT_GT(b.byte_size(), a.byte_size());
}

TEST(SelectTopK, MatchesFullSortForEveryK) {
  Rng rng(20);
  std::vector<Match> pool;
  for (int i = 0; i < 200; ++i) {
    // Few distinct distances so ties (resolved by id) are common.
    pool.push_back({static_cast<std::uint32_t>(i),
                    static_cast<std::uint32_t>(rng.uniform_u64(8))});
  }
  shuffle(pool.begin(), pool.end(), rng);
  for (const std::size_t k : {0u, 1u, 5u, 199u, 200u, 500u}) {
    std::vector<Match> expected = pool;
    std::sort(expected.begin(), expected.end(), match_less);
    if (expected.size() > k) expected.resize(k);
    std::vector<Match> got = pool;
    select_top_k(got, k);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id);
      EXPECT_EQ(got[i].distance2, expected[i].distance2);
    }
  }
}

TEST(LshIndex, QueryBatchMatchesPerQueryPathForAnyPoolSize) {
  LshIndexConfig cfg;
  cfg.multiprobe = true;
  LshIndex index(cfg);
  Rng rng(21);
  std::vector<Descriptor> db;
  for (int i = 0; i < 400; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  std::vector<Descriptor> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(perturb(db[static_cast<std::size_t>(i * 5)], rng, 3));
  }
  const auto serial = index.query_batch(queries, 3, nullptr);
  ASSERT_EQ(serial.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto single = index.query(queries[i], 3);
    ASSERT_EQ(serial[i].size(), single.size());
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(serial[i][j].id, single[j].id);
      EXPECT_EQ(serial[i][j].distance2, single[j].distance2);
    }
  }
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const auto batched = index.query_batch(queries, 3, &pool);
    ASSERT_EQ(batched.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(batched[i].size(), serial[i].size());
      for (std::size_t j = 0; j < serial[i].size(); ++j) {
        EXPECT_EQ(batched[i][j].id, serial[i][j].id);
        EXPECT_EQ(batched[i][j].distance2, serial[i][j].distance2);
      }
    }
  }
}

TEST(LshIndex, MatchListsBitIdenticalAcrossKernels) {
  LshIndex index;
  Rng rng(22);
  std::vector<Descriptor> db;
  for (int i = 0; i < 300; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  std::vector<Descriptor> queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back(perturb(db[static_cast<std::size_t>(i * 9)], rng, 2));
  }
  const DistanceKernel original = active_distance_kernel();
  ASSERT_TRUE(set_distance_kernel(DistanceKernel::kScalar));
  const auto reference = index.query_batch(queries, 4, nullptr);
  for (const DistanceKernel kernel : compiled_distance_kernels()) {
    SCOPED_TRACE(std::string(kernel_name(kernel)));
    ASSERT_TRUE(set_distance_kernel(kernel));
    const auto got = index.query_batch(queries, 4, nullptr);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].size(), reference[i].size());
      for (std::size_t j = 0; j < got[i].size(); ++j) {
        EXPECT_EQ(got[i][j].id, reference[i][j].id);
        EXPECT_EQ(got[i][j].distance2, reference[i][j].distance2);
      }
    }
  }
  ASSERT_TRUE(set_distance_kernel(original));
}

TEST(LshIndex, DescriptorAccessorsRoundtripFlatStorage) {
  LshIndex index;
  Rng rng(23);
  std::vector<Descriptor> db;
  for (int i = 0; i < 20; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  for (std::uint32_t id = 0; id < db.size(); ++id) {
    EXPECT_EQ(index.descriptor(id), db[id]);
    EXPECT_EQ(std::memcmp(index.descriptor_ptr(id), db[id].data(),
                          kDescriptorDims),
              0);
  }
  EXPECT_THROW(index.descriptor(static_cast<std::uint32_t>(db.size())),
               std::exception);
}

#if VP_OBS_ENABLED
TEST(LshIndex, CandidateCapTruncatesBeforeRankingAndCounts) {
  LshIndexConfig cfg;
  cfg.max_candidates = 8;  // tiny cap, trivially exceeded
  cfg.multiprobe = true;
  LshIndex index(cfg);
  Rng rng(24);
  const Descriptor base = random_descriptor(rng);
  for (int i = 0; i < 300; ++i) index.insert(perturb(base, rng, 1));
  auto& counter =
      obs::Registry::global().counter("index.candidates_truncated");
  const std::uint64_t before = counter.value();
  const auto matches = index.query(base, 4);
  EXPECT_EQ(matches.size(), 4u);  // cap >= k: ranking still fills k
  EXPECT_GT(counter.value(), before);
}
#endif

TEST(BruteForce, ExactNearest) {
  Rng rng(7);
  std::vector<Descriptor> db;
  for (int i = 0; i < 100; ++i) db.push_back(random_descriptor(rng));
  const BruteForceMatcher brute(db);
  // Query with a copy of a known entry.
  const Match m = brute.nearest(db[42]);
  EXPECT_EQ(m.id, 42u);
  EXPECT_EQ(m.distance2, 0u);
}

TEST(BruteForce, KnnOrderingAndContent) {
  Rng rng(8);
  std::vector<Descriptor> db;
  const Descriptor base = random_descriptor(rng);
  db.push_back(base);
  for (int i = 0; i < 60; ++i) db.push_back(perturb(base, rng, 5));
  const BruteForceMatcher brute(db);
  const auto knn = brute.knn(base, 5);
  ASSERT_EQ(knn.size(), 5u);
  EXPECT_EQ(knn[0].id, 0u);
  for (std::size_t i = 1; i < knn.size(); ++i) {
    EXPECT_GE(knn[i].distance2, knn[i - 1].distance2);
  }
}

TEST(BruteForce, BatchMatchesSerial) {
  Rng rng(9);
  std::vector<Descriptor> db, queries;
  for (int i = 0; i < 150; ++i) db.push_back(random_descriptor(rng));
  for (int i = 0; i < 30; ++i) queries.push_back(random_descriptor(rng));
  ThreadPool pool(3);
  const BruteForceMatcher par(db, &pool);
  const BruteForceMatcher ser(db, nullptr);
  const auto batch = par.nearest_batch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Match m = ser.nearest(queries[i]);
    EXPECT_EQ(batch[i].id, m.id);
    EXPECT_EQ(batch[i].distance2, m.distance2);
  }
}

TEST(RandomSubselect, SizesAndUniqueness) {
  Rng rng(10);
  const auto ids = random_subselect(100, 30, rng);
  EXPECT_EQ(ids.size(), 30u);
  const std::set<std::size_t> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (auto i : ids) EXPECT_LT(i, 100u);
  // Requesting more than available returns everything.
  EXPECT_EQ(random_subselect(10, 50, rng).size(), 10u);
}

TEST(RandomSubselect, RoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(20, 0);
  for (int t = 0; t < 2000; ++t) {
    for (auto i : random_subselect(20, 5, rng)) {
      ++counts[i];
    }
  }
  // Each index expected 2000 * 5/20 = 500 times.
  for (int c : counts) {
    EXPECT_GT(c, 380);
    EXPECT_LT(c, 620);
  }
}

}  // namespace
}  // namespace vp
