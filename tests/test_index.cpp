#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <set>

#include "features/distance.hpp"
#include "index/brute_force.hpp"
#include "index/lsh_index.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace vp {
namespace {

Descriptor random_descriptor(Rng& rng) {
  Descriptor d;
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.uniform_u64(80));
  return d;
}

Descriptor perturb(const Descriptor& d, Rng& rng, int magnitude) {
  Descriptor out = d;
  for (auto& v : out) {
    const int nv = static_cast<int>(v) +
                   static_cast<int>(rng.uniform_int(-magnitude, magnitude));
    v = static_cast<std::uint8_t>(std::clamp(nv, 0, 255));
  }
  return out;
}

TEST(LshIndex, InsertAssignsSequentialIds) {
  LshIndex index;
  Rng rng(1);
  EXPECT_EQ(index.insert(random_descriptor(rng)), 0u);
  EXPECT_EQ(index.insert(random_descriptor(rng)), 1u);
  EXPECT_EQ(index.size(), 2u);
}

TEST(LshIndex, ExactQueryFindsSelf) {
  LshIndex index;
  Rng rng(2);
  std::vector<Descriptor> db;
  for (int i = 0; i < 200; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  int found = 0;
  for (int i = 0; i < 50; ++i) {
    const auto matches = index.query(db[static_cast<std::size_t>(i * 4)], 1);
    if (!matches.empty() && matches[0].distance2 == 0) ++found;
  }
  EXPECT_GE(found, 48);  // LSH may rarely miss, never often
}

TEST(LshIndex, NearQueryRecallVsBruteForce) {
  LshIndex index;
  Rng rng(3);
  std::vector<Descriptor> db;
  for (int i = 0; i < 300; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  const BruteForceMatcher brute(db);
  int agree = 0, trials = 40;
  for (int i = 0; i < trials; ++i) {
    const Descriptor q = perturb(db[static_cast<std::size_t>(i * 7)], rng, 2);
    const auto lsh_match = index.query(q, 1);
    const Match exact = brute.nearest(q);
    if (!lsh_match.empty() && lsh_match[0].id == exact.id) ++agree;
  }
  EXPECT_GT(agree, trials * 7 / 10);
}

TEST(LshIndex, KnnSortedAscending) {
  LshIndex index;
  Rng rng(4);
  const Descriptor base = random_descriptor(rng);
  for (int i = 0; i < 50; ++i) index.insert(perturb(base, rng, 3));
  const auto matches = index.query(base, 10);
  ASSERT_GE(matches.size(), 2u);
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i].distance2, matches[i - 1].distance2);
  }
}

TEST(LshIndex, MultiprobeImprovesRecall) {
  LshIndexConfig with;
  with.multiprobe = true;
  LshIndexConfig without;
  without.multiprobe = false;
  LshIndex a(with), b(without);
  Rng rng(5);
  std::vector<Descriptor> db;
  for (int i = 0; i < 200; ++i) {
    db.push_back(random_descriptor(rng));
    a.insert(db.back());
    b.insert(db.back());
  }
  int hits_a = 0, hits_b = 0;
  for (int i = 0; i < 60; ++i) {
    const Descriptor q = perturb(db[static_cast<std::size_t>(i * 3)], rng, 3);
    hits_a += !a.query(q, 1).empty();
    hits_b += !b.query(q, 1).empty();
  }
  EXPECT_GE(hits_a, hits_b);
}

TEST(LshIndex, MemoryGrowsWithReplication) {
  LshIndexConfig small;
  small.lsh.tables = 2;
  LshIndexConfig big;
  big.lsh.tables = 20;
  LshIndex a(small), b(big);
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const Descriptor d = random_descriptor(rng);
    a.insert(d);
    b.insert(d);
  }
  // The Fig. 15 observation: more tables -> multiplicatively more memory.
  EXPECT_GT(b.byte_size(), a.byte_size());
}

TEST(SelectTopK, MatchesFullSortForEveryK) {
  Rng rng(20);
  std::vector<Match> pool;
  for (int i = 0; i < 200; ++i) {
    // Few distinct distances so ties (resolved by id) are common.
    pool.push_back({static_cast<std::uint32_t>(i),
                    static_cast<std::uint32_t>(rng.uniform_u64(8))});
  }
  shuffle(pool.begin(), pool.end(), rng);
  for (const std::size_t k : {0u, 1u, 5u, 199u, 200u, 500u}) {
    std::vector<Match> expected = pool;
    std::sort(expected.begin(), expected.end(), match_less);
    if (expected.size() > k) expected.resize(k);
    std::vector<Match> got = pool;
    select_top_k(got, k);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id);
      EXPECT_EQ(got[i].distance2, expected[i].distance2);
    }
  }
}

TEST(LshIndex, QueryBatchMatchesPerQueryPathForAnyPoolSize) {
  LshIndexConfig cfg;
  cfg.multiprobe = true;
  LshIndex index(cfg);
  Rng rng(21);
  std::vector<Descriptor> db;
  for (int i = 0; i < 400; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  std::vector<Descriptor> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(perturb(db[static_cast<std::size_t>(i * 5)], rng, 3));
  }
  const auto serial = index.query_batch(queries, 3, nullptr);
  ASSERT_EQ(serial.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto single = index.query(queries[i], 3);
    ASSERT_EQ(serial[i].size(), single.size());
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(serial[i][j].id, single[j].id);
      EXPECT_EQ(serial[i][j].distance2, single[j].distance2);
    }
  }
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const auto batched = index.query_batch(queries, 3, &pool);
    ASSERT_EQ(batched.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(batched[i].size(), serial[i].size());
      for (std::size_t j = 0; j < serial[i].size(); ++j) {
        EXPECT_EQ(batched[i][j].id, serial[i][j].id);
        EXPECT_EQ(batched[i][j].distance2, serial[i][j].distance2);
      }
    }
  }
}

TEST(LshIndex, MatchListsBitIdenticalAcrossKernels) {
  LshIndex index;
  Rng rng(22);
  std::vector<Descriptor> db;
  for (int i = 0; i < 300; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  std::vector<Descriptor> queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back(perturb(db[static_cast<std::size_t>(i * 9)], rng, 2));
  }
  const DistanceKernel original = active_distance_kernel();
  ASSERT_TRUE(set_distance_kernel(DistanceKernel::kScalar));
  const auto reference = index.query_batch(queries, 4, nullptr);
  for (const DistanceKernel kernel : compiled_distance_kernels()) {
    SCOPED_TRACE(std::string(kernel_name(kernel)));
    ASSERT_TRUE(set_distance_kernel(kernel));
    const auto got = index.query_batch(queries, 4, nullptr);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].size(), reference[i].size());
      for (std::size_t j = 0; j < got[i].size(); ++j) {
        EXPECT_EQ(got[i][j].id, reference[i][j].id);
        EXPECT_EQ(got[i][j].distance2, reference[i][j].distance2);
      }
    }
  }
  ASSERT_TRUE(set_distance_kernel(original));
}

TEST(LshIndex, DescriptorAccessorsRoundtripFlatStorage) {
  LshIndex index;
  Rng rng(23);
  std::vector<Descriptor> db;
  for (int i = 0; i < 20; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  for (std::uint32_t id = 0; id < db.size(); ++id) {
    EXPECT_EQ(index.descriptor(id), db[id]);
    EXPECT_EQ(std::memcmp(index.descriptor_ptr(id), db[id].data(),
                          kDescriptorDims),
              0);
  }
  EXPECT_THROW(index.descriptor(static_cast<std::uint32_t>(db.size())),
               std::exception);
}

LshIndexConfig pq_config(std::uint32_t rerank_depth) {
  LshIndexConfig cfg;
  cfg.multiprobe = true;  // fat candidate sets: the ADC stage actually runs
  cfg.pq.enabled = true;
  cfg.pq.rerank_depth = rerank_depth;
  return cfg;
}

TEST(PqIndex, TrainEncodesEveryDescriptorAndReportsBytes) {
  LshIndex index(pq_config(16));
  Rng rng(30);
  std::vector<Descriptor> db;
  for (int i = 0; i < 300; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  EXPECT_FALSE(index.pq_ready());  // enabled but untrained
  const std::size_t exact_only_bytes = index.byte_size();
  index.train_pq();
  ASSERT_TRUE(index.pq_ready());
  ASSERT_EQ(index.pq_codes().size(), db.size() * kPqCodeBytes);
  // The code payload is exactly 8x smaller than the raw descriptors; the
  // fixed 32 KB codebook rides on top and shows up in byte_size.
  EXPECT_EQ(index.descriptor_bytes(), 8 * index.pq_codes().size());
  EXPECT_EQ(index.pq_bytes(), index.pq_codes().size() + kPqCodebookBytes);
  EXPECT_GT(index.byte_size(), exact_only_bytes);
  std::array<std::uint8_t, kPqCodeBytes> expect{};
  for (std::uint32_t id = 0; id < db.size(); ++id) {
    index.pq_codebook().encode(db[id].data(), expect.data());
    EXPECT_EQ(std::memcmp(index.code_ptr(id), expect.data(), kPqCodeBytes), 0);
  }
}

TEST(PqIndex, TrainIsNoOpWhenDisabledOrEmpty) {
  LshIndex disabled;
  Rng rng(31);
  disabled.insert(random_descriptor(rng));
  disabled.train_pq();
  EXPECT_FALSE(disabled.pq_ready());
  EXPECT_EQ(disabled.pq_bytes(), 0u);

  LshIndex empty(pq_config(16));
  empty.train_pq();
  EXPECT_FALSE(empty.pq_ready());
}

TEST(PqIndex, IncrementalInsertAfterTrainStaysReady) {
  LshIndex index(pq_config(16));
  Rng rng(32);
  std::vector<Descriptor> db;
  for (int i = 0; i < 200; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  index.train_pq();
  const auto codebook_before = index.pq_codebook().raw();
  std::vector<std::uint8_t> raw_before(codebook_before.begin(),
                                       codebook_before.end());
  for (int i = 0; i < 100; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  // insert() encodes as it goes once trained; a later train_pq() call
  // must neither retrain nor re-encode.
  EXPECT_TRUE(index.pq_ready());
  index.train_pq();
  const auto codebook_after = index.pq_codebook().raw();
  EXPECT_TRUE(std::equal(raw_before.begin(), raw_before.end(),
                         codebook_after.begin()));
  ASSERT_EQ(index.pq_codes().size(), db.size() * kPqCodeBytes);
  std::array<std::uint8_t, kPqCodeBytes> expect{};
  for (std::uint32_t id = 0; id < db.size(); ++id) {
    index.pq_codebook().encode(db[id].data(), expect.data());
    EXPECT_EQ(std::memcmp(index.code_ptr(id), expect.data(), kPqCodeBytes), 0);
  }
}

TEST(PqIndex, RestorePqValidatesCoverage) {
  LshIndex index(pq_config(16));
  Rng rng(33);
  for (int i = 0; i < 50; ++i) index.insert(random_descriptor(rng));
  index.train_pq();
  PqCodebook book = PqCodebook::from_raw(
      {index.pq_codebook().raw().data(), index.pq_codebook().raw().size()});
  EXPECT_THROW(
      index.restore_pq(std::move(book),
                       std::vector<std::uint8_t>(49 * kPqCodeBytes)),
      std::exception);
  EXPECT_THROW(index.restore_pq(PqCodebook{},
                                std::vector<std::uint8_t>(50 * kPqCodeBytes)),
               std::exception);
}

TEST(PqIndex, MatchesExactOnlyWhenRerankCoversCandidates) {
  // rerank_depth >= max_candidates: the ADC stage can never prune, so the
  // PQ index must return the exact-only index's match lists verbatim.
  LshIndexConfig cfg = pq_config(8192);
  LshIndexConfig exact_cfg;
  exact_cfg.multiprobe = true;
  LshIndex pq(cfg), exact(exact_cfg);
  Rng rng(34);
  std::vector<Descriptor> db;
  for (int i = 0; i < 400; ++i) {
    db.push_back(random_descriptor(rng));
    pq.insert(db.back());
    exact.insert(db.back());
  }
  pq.train_pq();
  ASSERT_TRUE(pq.pq_ready());
  for (int i = 0; i < 40; ++i) {
    const Descriptor q = perturb(db[static_cast<std::size_t>(i * 9)], rng, 3);
    const auto a = pq.query(q, 4);
    const auto b = exact.query(q, 4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].id, b[j].id);
      EXPECT_EQ(a[j].distance2, b[j].distance2);
    }
  }
}

// The determinism contract extended to PQ mode: identical match lists for
// every compiled ADC kernel, every compiled exact-distance kernel, and
// every pool size. A dense cluster around few bases guarantees candidate
// sets far deeper than the rerank depth, so the ADC stage really prunes.
TEST(PqIndex, AdcResultsDeterministicAcrossKernelsAndPools) {
  LshIndex index(pq_config(8));
  Rng rng(35);
  std::vector<Descriptor> bases;
  for (int i = 0; i < 4; ++i) bases.push_back(random_descriptor(rng));
  for (int i = 0; i < 600; ++i) {
    index.insert(perturb(bases[static_cast<std::size_t>(i % 4)], rng, 2));
  }
  index.train_pq();
  ASSERT_TRUE(index.pq_ready());
  std::vector<Descriptor> queries;
  for (int i = 0; i < 24; ++i) {
    queries.push_back(perturb(bases[static_cast<std::size_t>(i % 4)], rng, 2));
  }

  const DistanceKernel dist_original = active_distance_kernel();
  const DistanceKernel adc_original = active_adc_kernel();
  ASSERT_TRUE(set_distance_kernel(DistanceKernel::kScalar));
  ASSERT_TRUE(set_adc_kernel(DistanceKernel::kScalar));
  const auto reference = index.query_batch(queries, 4, nullptr);

  for (const DistanceKernel adc : compiled_adc_kernels()) {
    ASSERT_TRUE(set_adc_kernel(adc));
    for (const DistanceKernel dist : compiled_distance_kernels()) {
      ASSERT_TRUE(set_distance_kernel(dist));
      SCOPED_TRACE("adc=" + std::string(kernel_name(adc)) +
                   " dist=" + std::string(kernel_name(dist)));
      for (const std::size_t threads : {0u, 1u, 4u}) {
        std::unique_ptr<ThreadPool> pool;
        if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
        const auto got = index.query_batch(queries, 4, pool.get());
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i].size(), reference[i].size());
          for (std::size_t j = 0; j < got[i].size(); ++j) {
            EXPECT_EQ(got[i][j].id, reference[i][j].id);
            EXPECT_EQ(got[i][j].distance2, reference[i][j].distance2);
          }
        }
      }
    }
  }
  ASSERT_TRUE(set_distance_kernel(dist_original));
  ASSERT_TRUE(set_adc_kernel(adc_original));
}

// Recall-regression guard (acceptance bar: >= 0.95). The coarse ADC scan
// may only reorder candidates before the exact rerank; against the
// exact-only index's top-1 on perturbed stored descriptors it must stay
// essentially lossless at the default rerank depth.
TEST(PqIndex, RecallAtOneVsExactOnlyAboveGuard) {
  LshIndex pq(pq_config(64)), exact([] {
    LshIndexConfig cfg;
    cfg.multiprobe = true;
    return cfg;
  }());
  Rng rng(36);
  std::vector<Descriptor> bases;
  for (int i = 0; i < 8; ++i) bases.push_back(random_descriptor(rng));
  for (int i = 0; i < 2000; ++i) {
    const Descriptor d = perturb(bases[static_cast<std::size_t>(i % 8)], rng, 4);
    pq.insert(d);
    exact.insert(d);
  }
  pq.train_pq();
  ASSERT_TRUE(pq.pq_ready());
  int total = 0, hit = 0;
  bool pruned = false;
  for (int i = 0; i < 200; ++i) {
    const Descriptor q = perturb(bases[static_cast<std::size_t>(i % 8)], rng, 4);
    const auto e = exact.query(q, 1);
    if (e.empty()) continue;
    const auto p = pq.query(q, 1);
    ASSERT_FALSE(p.empty());
    ++total;
    hit += (p[0].id == e[0].id);
    pruned = true;  // every query sees ~250 clustered candidates > depth 64
  }
  ASSERT_TRUE(pruned);
  ASSERT_GE(total, 150);
  EXPECT_GE(static_cast<double>(hit), 0.95 * static_cast<double>(total));
}

// Recall-regression guard for the compact uplink (acceptance bar:
// >= 0.95 vs raw). The client-side PQ encode is lossy — the server ranks
// a reconstructed (quantized) query instead of the raw descriptor — so
// this guard measures that quantization's end-to-end retrieval cost: the
// compact pipeline's top-1 must agree with the raw pipeline's top-1 on at
// least 95% of queries.
TEST(CompactUplink, RecallAtOneVsRawAboveGuard) {
  // Distinct stored descriptors, queries perturbed off stored ones: the
  // regime the uplink actually runs in (SIFT descriptors of distinct
  // keypoints are far apart relative to view-to-view jitter). Quantization
  // noise must stay well inside that margin. Dense near-duplicate blobs
  // are deliberately NOT the corpus here — when hundreds of neighbors are
  // nearly equidistant, top-1 identity under any lossy code is a coin
  // flip, which measures the corpus, not the codec.
  LshIndex index(pq_config(64));
  Rng rng(38);
  std::vector<Descriptor> db;
  for (int i = 0; i < 2000; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  index.train_pq();
  ASSERT_TRUE(index.pq_ready());
  const PqCodebook& book = index.pq_codebook();
  int total = 0, hit = 0;
  for (int i = 0; i < 200; ++i) {
    const Descriptor q = perturb(db[static_cast<std::size_t>(i * 9)], rng, 3);
    const auto raw = index.query(q, 1);
    if (raw.empty()) continue;
    // The compact path: client encodes, server reconstructs and ranks.
    std::array<std::uint8_t, kPqCodeBytes> code{};
    book.encode(q.data(), code.data());
    Descriptor rebuilt{};
    book.reconstruct(code.data(), rebuilt.data());
    const auto compact = index.query(rebuilt, 1);
    ASSERT_FALSE(compact.empty());
    ++total;
    hit += (compact[0].id == raw[0].id);
  }
  ASSERT_GE(total, 150);
  EXPECT_GE(static_cast<double>(hit), 0.95 * static_cast<double>(total));
}

// Bit-identity of the compact serving paths: for reconstructed queries,
// query_batch_codes (symmetric-ADC rows gathered from the precomputed
// centroid matrix) must equal query_batch (table built from the
// reconstructed descriptor), match for match, across every compiled ADC
// kernel, exact-distance kernel, and pool size.
TEST(CompactUplink, SymmetricCodesPathBitIdenticalAcrossKernelsAndPools) {
  LshIndex index(pq_config(8));
  Rng rng(39);
  std::vector<Descriptor> bases;
  for (int i = 0; i < 4; ++i) bases.push_back(random_descriptor(rng));
  for (int i = 0; i < 600; ++i) {
    index.insert(perturb(bases[static_cast<std::size_t>(i % 4)], rng, 2));
  }
  index.train_pq();
  ASSERT_TRUE(index.pq_ready());
  const PqCodebook& book = index.pq_codebook();

  // Compact queries as the server sees them: codes + reconstructions.
  std::vector<Descriptor> queries;
  std::vector<std::uint8_t> codes;
  for (int i = 0; i < 24; ++i) {
    const Descriptor q =
        perturb(bases[static_cast<std::size_t>(i % 4)], rng, 2);
    std::array<std::uint8_t, kPqCodeBytes> code{};
    book.encode(q.data(), code.data());
    codes.insert(codes.end(), code.begin(), code.end());
    Descriptor rebuilt{};
    book.reconstruct(code.data(), rebuilt.data());
    queries.push_back(rebuilt);
  }

  const DistanceKernel dist_original = active_distance_kernel();
  const DistanceKernel adc_original = active_adc_kernel();
  ASSERT_TRUE(set_distance_kernel(DistanceKernel::kScalar));
  ASSERT_TRUE(set_adc_kernel(DistanceKernel::kScalar));
  const auto reference = index.query_batch(queries, 4, nullptr);

  for (const DistanceKernel adc : compiled_adc_kernels()) {
    ASSERT_TRUE(set_adc_kernel(adc));
    for (const DistanceKernel dist : compiled_distance_kernels()) {
      ASSERT_TRUE(set_distance_kernel(dist));
      SCOPED_TRACE("adc=" + std::string(kernel_name(adc)) +
                   " dist=" + std::string(kernel_name(dist)));
      for (const std::size_t threads : {0u, 1u, 4u}) {
        std::unique_ptr<ThreadPool> pool;
        if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
        const auto got = index.query_batch_codes(queries, codes, 4, pool.get());
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i].size(), reference[i].size());
          for (std::size_t j = 0; j < got[i].size(); ++j) {
            EXPECT_EQ(got[i][j].id, reference[i][j].id);
            EXPECT_EQ(got[i][j].distance2, reference[i][j].distance2);
          }
        }
      }
    }
  }
  ASSERT_TRUE(set_distance_kernel(dist_original));
  ASSERT_TRUE(set_adc_kernel(adc_original));
}

TEST(CompactUplink, QueryBatchCodesFallsBackWhenPqUnready) {
  // A plain exact index has no codebook: the codes overload must serve the
  // batch through the ordinary path instead of crashing or mis-ranking.
  LshIndex index;
  Rng rng(40);
  std::vector<Descriptor> db;
  for (int i = 0; i < 100; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  std::vector<Descriptor> queries{db[3], db[42]};
  const std::vector<std::uint8_t> codes(queries.size() * kPqCodeBytes, 0);
  const auto via_codes = index.query_batch_codes(queries, codes, 2, nullptr);
  const auto via_batch = index.query_batch(queries, 2, nullptr);
  ASSERT_EQ(via_codes.size(), via_batch.size());
  for (std::size_t i = 0; i < via_codes.size(); ++i) {
    ASSERT_EQ(via_codes[i].size(), via_batch[i].size());
    for (std::size_t j = 0; j < via_codes[i].size(); ++j) {
      EXPECT_EQ(via_codes[i][j].id, via_batch[i][j].id);
    }
  }
}

#if VP_OBS_ENABLED
TEST(PqIndex, AdcScanCounterTracksScannedCandidates) {
  LshIndex index(pq_config(8));
  Rng rng(37);
  const Descriptor base = random_descriptor(rng);
  for (int i = 0; i < 300; ++i) index.insert(perturb(base, rng, 1));
  index.train_pq();
  ASSERT_TRUE(index.pq_ready());
  auto& counter = obs::Registry::global().counter("index.adc_scans");
  const std::uint64_t before = counter.value();
  const auto matches = index.query(base, 4);
  EXPECT_EQ(matches.size(), 4u);
  EXPECT_GT(counter.value(), before);
}
#endif

#if VP_OBS_ENABLED
TEST(LshIndex, CandidateCapTruncatesBeforeRankingAndCounts) {
  LshIndexConfig cfg;
  cfg.max_candidates = 8;  // tiny cap, trivially exceeded
  cfg.multiprobe = true;
  LshIndex index(cfg);
  Rng rng(24);
  const Descriptor base = random_descriptor(rng);
  for (int i = 0; i < 300; ++i) index.insert(perturb(base, rng, 1));
  auto& counter =
      obs::Registry::global().counter("index.candidates_truncated");
  const std::uint64_t before = counter.value();
  const auto matches = index.query(base, 4);
  EXPECT_EQ(matches.size(), 4u);  // cap >= k: ranking still fills k
  EXPECT_GT(counter.value(), before);
}
#endif

TEST(BruteForce, ExactNearest) {
  Rng rng(7);
  std::vector<Descriptor> db;
  for (int i = 0; i < 100; ++i) db.push_back(random_descriptor(rng));
  const BruteForceMatcher brute(db);
  // Query with a copy of a known entry.
  const Match m = brute.nearest(db[42]);
  EXPECT_EQ(m.id, 42u);
  EXPECT_EQ(m.distance2, 0u);
}

TEST(BruteForce, KnnOrderingAndContent) {
  Rng rng(8);
  std::vector<Descriptor> db;
  const Descriptor base = random_descriptor(rng);
  db.push_back(base);
  for (int i = 0; i < 60; ++i) db.push_back(perturb(base, rng, 5));
  const BruteForceMatcher brute(db);
  const auto knn = brute.knn(base, 5);
  ASSERT_EQ(knn.size(), 5u);
  EXPECT_EQ(knn[0].id, 0u);
  for (std::size_t i = 1; i < knn.size(); ++i) {
    EXPECT_GE(knn[i].distance2, knn[i - 1].distance2);
  }
}

TEST(BruteForce, BatchMatchesSerial) {
  Rng rng(9);
  std::vector<Descriptor> db, queries;
  for (int i = 0; i < 150; ++i) db.push_back(random_descriptor(rng));
  for (int i = 0; i < 30; ++i) queries.push_back(random_descriptor(rng));
  ThreadPool pool(3);
  const BruteForceMatcher par(db, &pool);
  const BruteForceMatcher ser(db, nullptr);
  const auto batch = par.nearest_batch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Match m = ser.nearest(queries[i]);
    EXPECT_EQ(batch[i].id, m.id);
    EXPECT_EQ(batch[i].distance2, m.distance2);
  }
}

TEST(RandomSubselect, SizesAndUniqueness) {
  Rng rng(10);
  const auto ids = random_subselect(100, 30, rng);
  EXPECT_EQ(ids.size(), 30u);
  const std::set<std::size_t> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (auto i : ids) EXPECT_LT(i, 100u);
  // Requesting more than available returns everything.
  EXPECT_EQ(random_subselect(10, 50, rng).size(), 10u);
}

TEST(RandomSubselect, RoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(20, 0);
  for (int t = 0; t < 2000; ++t) {
    for (auto i : random_subselect(20, 5, rng)) {
      ++counts[i];
    }
  }
  // Each index expected 2000 * 5/20 = 500 times.
  for (int c : counts) {
    EXPECT_GT(c, 380);
    EXPECT_LT(c, 620);
  }
}

}  // namespace
}  // namespace vp
