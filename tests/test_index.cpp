#include <gtest/gtest.h>

#include <set>

#include "index/brute_force.hpp"
#include "index/lsh_index.hpp"
#include "util/rng.hpp"

namespace vp {
namespace {

Descriptor random_descriptor(Rng& rng) {
  Descriptor d;
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.uniform_u64(80));
  return d;
}

Descriptor perturb(const Descriptor& d, Rng& rng, int magnitude) {
  Descriptor out = d;
  for (auto& v : out) {
    const int nv = static_cast<int>(v) +
                   static_cast<int>(rng.uniform_int(-magnitude, magnitude));
    v = static_cast<std::uint8_t>(std::clamp(nv, 0, 255));
  }
  return out;
}

TEST(LshIndex, InsertAssignsSequentialIds) {
  LshIndex index;
  Rng rng(1);
  EXPECT_EQ(index.insert(random_descriptor(rng)), 0u);
  EXPECT_EQ(index.insert(random_descriptor(rng)), 1u);
  EXPECT_EQ(index.size(), 2u);
}

TEST(LshIndex, ExactQueryFindsSelf) {
  LshIndex index;
  Rng rng(2);
  std::vector<Descriptor> db;
  for (int i = 0; i < 200; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  int found = 0;
  for (int i = 0; i < 50; ++i) {
    const auto matches = index.query(db[static_cast<std::size_t>(i * 4)], 1);
    if (!matches.empty() && matches[0].distance2 == 0) ++found;
  }
  EXPECT_GE(found, 48);  // LSH may rarely miss, never often
}

TEST(LshIndex, NearQueryRecallVsBruteForce) {
  LshIndex index;
  Rng rng(3);
  std::vector<Descriptor> db;
  for (int i = 0; i < 300; ++i) {
    db.push_back(random_descriptor(rng));
    index.insert(db.back());
  }
  const BruteForceMatcher brute(db);
  int agree = 0, trials = 40;
  for (int i = 0; i < trials; ++i) {
    const Descriptor q = perturb(db[static_cast<std::size_t>(i * 7)], rng, 2);
    const auto lsh_match = index.query(q, 1);
    const Match exact = brute.nearest(q);
    if (!lsh_match.empty() && lsh_match[0].id == exact.id) ++agree;
  }
  EXPECT_GT(agree, trials * 7 / 10);
}

TEST(LshIndex, KnnSortedAscending) {
  LshIndex index;
  Rng rng(4);
  const Descriptor base = random_descriptor(rng);
  for (int i = 0; i < 50; ++i) index.insert(perturb(base, rng, 3));
  const auto matches = index.query(base, 10);
  ASSERT_GE(matches.size(), 2u);
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i].distance2, matches[i - 1].distance2);
  }
}

TEST(LshIndex, MultiprobeImprovesRecall) {
  LshIndexConfig with;
  with.multiprobe = true;
  LshIndexConfig without;
  without.multiprobe = false;
  LshIndex a(with), b(without);
  Rng rng(5);
  std::vector<Descriptor> db;
  for (int i = 0; i < 200; ++i) {
    db.push_back(random_descriptor(rng));
    a.insert(db.back());
    b.insert(db.back());
  }
  int hits_a = 0, hits_b = 0;
  for (int i = 0; i < 60; ++i) {
    const Descriptor q = perturb(db[static_cast<std::size_t>(i * 3)], rng, 3);
    hits_a += !a.query(q, 1).empty();
    hits_b += !b.query(q, 1).empty();
  }
  EXPECT_GE(hits_a, hits_b);
}

TEST(LshIndex, MemoryGrowsWithReplication) {
  LshIndexConfig small;
  small.lsh.tables = 2;
  LshIndexConfig big;
  big.lsh.tables = 20;
  LshIndex a(small), b(big);
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const Descriptor d = random_descriptor(rng);
    a.insert(d);
    b.insert(d);
  }
  // The Fig. 15 observation: more tables -> multiplicatively more memory.
  EXPECT_GT(b.byte_size(), a.byte_size());
}

TEST(BruteForce, ExactNearest) {
  Rng rng(7);
  std::vector<Descriptor> db;
  for (int i = 0; i < 100; ++i) db.push_back(random_descriptor(rng));
  const BruteForceMatcher brute(db);
  // Query with a copy of a known entry.
  const Match m = brute.nearest(db[42]);
  EXPECT_EQ(m.id, 42u);
  EXPECT_EQ(m.distance2, 0u);
}

TEST(BruteForce, KnnOrderingAndContent) {
  Rng rng(8);
  std::vector<Descriptor> db;
  const Descriptor base = random_descriptor(rng);
  db.push_back(base);
  for (int i = 0; i < 60; ++i) db.push_back(perturb(base, rng, 5));
  const BruteForceMatcher brute(db);
  const auto knn = brute.knn(base, 5);
  ASSERT_EQ(knn.size(), 5u);
  EXPECT_EQ(knn[0].id, 0u);
  for (std::size_t i = 1; i < knn.size(); ++i) {
    EXPECT_GE(knn[i].distance2, knn[i - 1].distance2);
  }
}

TEST(BruteForce, BatchMatchesSerial) {
  Rng rng(9);
  std::vector<Descriptor> db, queries;
  for (int i = 0; i < 150; ++i) db.push_back(random_descriptor(rng));
  for (int i = 0; i < 30; ++i) queries.push_back(random_descriptor(rng));
  ThreadPool pool(3);
  const BruteForceMatcher par(db, &pool);
  const BruteForceMatcher ser(db, nullptr);
  const auto batch = par.nearest_batch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Match m = ser.nearest(queries[i]);
    EXPECT_EQ(batch[i].id, m.id);
    EXPECT_EQ(batch[i].distance2, m.distance2);
  }
}

TEST(RandomSubselect, SizesAndUniqueness) {
  Rng rng(10);
  const auto ids = random_subselect(100, 30, rng);
  EXPECT_EQ(ids.size(), 30u);
  const std::set<std::size_t> uniq(ids.begin(), ids.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (auto i : ids) EXPECT_LT(i, 100u);
  // Requesting more than available returns everything.
  EXPECT_EQ(random_subselect(10, 50, rng).size(), 10u);
}

TEST(RandomSubselect, RoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(20, 0);
  for (int t = 0; t < 2000; ++t) {
    for (auto i : random_subselect(20, 5, rng)) {
      ++counts[i];
    }
  }
  // Each index expected 2000 * 5/20 = 500 times.
  for (int c : counts) {
    EXPECT_GT(c, 380);
    EXPECT_LT(c, 620);
  }
}

}  // namespace
}  // namespace vp
