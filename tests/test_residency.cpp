// Tiered shard residency (core/residency.hpp + server_io v4): mmap-backed
// cold shards, lazy first-query fault-in, single-flight loads, and the
// LRU resident-byte budget — plus the v4 on-disk format's fuzz contract
// (truncations and bit flips only ever throw DecodeError; a corrupt file
// never installs a partial shard).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdio>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <thread>

#include "core/server.hpp"
#include "imaging/codec.hpp"
#include "util/rng.hpp"

namespace vp {
namespace {

Descriptor random_descriptor(Rng& rng) {
  Descriptor d;
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.uniform_u64(80));
  return d;
}

Feature make_feature(Rng& rng, float x = 10, float y = 10) {
  Feature f;
  f.keypoint = {x, y, 2.0f, 0.0f, 1.0f, 0};
  f.descriptor = random_descriptor(rng);
  return f;
}

OracleConfig small_oracle() {
  OracleConfig cfg;
  cfg.capacity = 20'000;
  return cfg;
}

ServerConfig small_server() {
  ServerConfig cfg;
  cfg.oracle = small_oracle();
  return cfg;
}

std::vector<KeypointMapping> random_mappings(Rng& rng, int n, Vec3 base) {
  std::vector<KeypointMapping> ms;
  ms.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ms.push_back({make_feature(rng), base + Vec3{0.1 * i, 0, 0},
                  static_cast<std::uint32_t>(i)});
  }
  return ms;
}

/// A localizable place: mappings seen from a known camera pose, plus the
/// query whose features project those same landmarks.
struct PlaceFixture {
  std::vector<KeypointMapping> mappings;
  FingerprintQuery query;
  Vec3 true_position;
};

PlaceFixture make_place_fixture(Rng& rng, Vec3 cam_pos) {
  const CameraIntrinsics intr{640, 480, 1.15};
  const Pose cam_pose = Pose::from_euler(cam_pos, 0.3, 0, 0);
  PlaceFixture fx;
  fx.true_position = cam_pos;
  fx.query.image_width = 640;
  fx.query.image_height = 480;
  fx.query.fov_h = 1.15f;
  for (int i = 0; i < 25; ++i) {
    const Vec3 body{rng.uniform(-1.5, 1.5), rng.uniform(-1.0, 1.0),
                    rng.uniform(2.0, 6.0)};
    const auto px = intr.project(body);
    if (!px) continue;
    Feature f = make_feature(rng, static_cast<float>(px->x),
                             static_cast<float>(px->y));
    fx.mappings.push_back({f, cam_pose.to_world(body), 0});
    fx.query.features.push_back(f);
  }
  return fx;
}

ServerConfig localizing_server() {
  ServerConfig cfg = small_server();
  cfg.localize.search_lo = {-10, -10, 0};
  cfg.localize.search_hi = {10, 10, 3};
  // Generation-bounded, never wall-clock-bounded, so bit-identity
  // assertions cannot go flaky on a busy CI box.
  cfg.localize.de.time_budget_sec = 1e9;
  cfg.clustering.radius = 5.0;
  return cfg;
}

/// Unique temp path per test; removed by the caller when it cares.
std::string temp_db_path(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path();
  return (dir / (std::string("vp_residency_") + tag + "_" +
                 std::to_string(::getpid()) + ".db"))
      .string();
}

void write_bytes(const std::string& path, std::span<const std::uint8_t> b) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.is_open());
  f.write(reinterpret_cast<const char*>(b.data()),
          static_cast<std::streamsize>(b.size()));
}

/// Two localizable wings saved to a v4 file. Returns the fixtures so
/// tests can replay the exact queries against lazily-loaded twins.
struct SavedDb {
  std::string path;
  PlaceFixture a, b;
};

SavedDb save_two_wing_db(const char* tag) {
  Rng rng(91);
  SavedDb db;
  db.path = temp_db_path(tag);
  db.a = make_place_fixture(rng, {0, 0, 1});
  db.b = make_place_fixture(rng, {4, 1, 1});
  db.a.query.place = "wing-a";
  db.b.query.place = "wing-b";
  VisualPrintServer server(localizing_server());
  const ServerConfig cfg = localizing_server();
  server.ingest_wardrive("wing-a", db.a.mappings, &cfg);
  server.ingest_wardrive("wing-b", db.b.mappings, &cfg);
  server.save(db.path);
  return db;
}

/// Shard-content bit-identity: descriptors, stored keypoints, oracle bytes,
/// and epoch all match. This is the "re-faulted shard is bit-identical to
/// its never-evicted twin" contract; solver *outputs* are compared only up
/// to the fix (DE convergence is not bit-reproducible across runs).
void expect_same_shard(const PlaceShard& x, const PlaceShard& y) {
  EXPECT_EQ(x.place, y.place);
  EXPECT_EQ(x.epoch, y.epoch);
  EXPECT_EQ(x.oracle_version, y.oracle_version);
  EXPECT_EQ(x.scene_count, y.scene_count);
  EXPECT_EQ(x.oracle.serialize(), y.oracle.serialize());
  ASSERT_EQ(x.stored.size(), y.stored.size());
  for (std::size_t i = 0; i < x.stored.size(); ++i) {
    EXPECT_EQ(x.stored[i].position.x, y.stored[i].position.x);
    EXPECT_EQ(x.stored[i].position.y, y.stored[i].position.y);
    EXPECT_EQ(x.stored[i].position.z, y.stored[i].position.z);
    EXPECT_EQ(x.stored[i].scene_id, y.stored[i].scene_id);
    EXPECT_EQ(x.stored[i].source_id, y.stored[i].source_id);
    EXPECT_EQ(x.index.descriptor(static_cast<std::uint32_t>(i)),
              y.index.descriptor(static_cast<std::uint32_t>(i)));
  }
}

void expect_good_fix(const LocationResponse& r, const PlaceFixture& fx,
                     const std::string& place) {
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.place, place);
  EXPECT_LT(r.position.distance(fx.true_position), 0.5);
}

// ---------------------------------------------------------------------------
// v4 format

TEST(ResidencyFormat, V4SaveLoadRoundtripIsQueryIdentical) {
  const SavedDb db = save_two_wing_db("roundtrip");
  VisualPrintServer loaded = VisualPrintServer::load(db.path);

  EXPECT_EQ(loaded.store().epoch("wing-a"), 1u);
  EXPECT_EQ(loaded.store().storage_mode("wing-a"), "exact");

  Rng rng(7);
  const LocationResponse r = loaded.localize_query(db.a.query, rng);
  ASSERT_TRUE(r.found);
  EXPECT_LT(r.position.distance(db.a.true_position), 0.5);

  // The loaded server re-serializes to the identical byte stream: the
  // format is deterministic and the mmap-borrowed load lost nothing.
  VisualPrintServer original = VisualPrintServer::load(db.path);
  EXPECT_EQ(loaded.serialize(), original.serialize());
  std::filesystem::remove(db.path);
}

TEST(ResidencyFormat, TruncationSweepThrowsDecodeErrorOnly) {
  VisualPrintServer server(small_server());
  Rng rng(58);
  server.ingest_wardrive("hall", random_mappings(rng, 40, {0, 0, 0}));
  const Bytes blob = server.serialize();

  for (std::size_t cut = 8; cut < blob.size(); cut += 211) {
    Bytes t(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(VisualPrintServer::deserialize(t), DecodeError) << cut;
  }

  // Lazy registration reads the same header and must reject truncation
  // just as eagerly (the total-file-size field catches every cut that
  // spares the header fields themselves).
  const std::string path = temp_db_path("trunc");
  Bytes t(blob.begin(),
          blob.begin() + static_cast<std::ptrdiff_t>(blob.size() / 2));
  write_bytes(path, t);
  DbLoadOptions lazy;
  lazy.lazy = true;
  EXPECT_THROW(VisualPrintServer::load(path, lazy), DecodeError);
  std::filesystem::remove(path);
}

TEST(ResidencyFormat, SeededBitFlipsNeverCrashOrPartiallyInstall) {
  VisualPrintServer server(small_server());
  Rng rng(59);
  server.ingest_wardrive("hall", random_mappings(rng, 40, {0, 0, 0}));
  const Bytes blob = server.serialize();

  Rng fuzz(0xF1);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes corrupt = blob;
    const std::size_t byte = fuzz.uniform_u64(corrupt.size());
    corrupt[byte] ^= static_cast<std::uint8_t>(1u << fuzz.uniform_u64(8));
    try {
      // A flip in alignment padding changes nothing the parser reads;
      // anything else must surface as DecodeError. Both outcomes leave
      // no partial state behind; any other exception (or a crash) fails.
      VisualPrintServer loaded = VisualPrintServer::deserialize(corrupt);
      EXPECT_EQ(loaded.store().epoch("hall"), 1u);
    } catch (const DecodeError&) {
    } catch (const std::exception& e) {
      ADD_FAILURE() << "flip at byte " << byte << " threw non-DecodeError: "
                    << e.what();
    }
  }

  // The merge path parses the whole file before installing any shard: a
  // corrupt merge leaves the receiving server untouched.
  const std::string path = temp_db_path("flip");
  Bytes corrupt = blob;
  corrupt[corrupt.size() - 1] ^= 0x40;  // inside the last segment
  write_bytes(path, corrupt);
  VisualPrintServer receiver(small_server());
  const std::size_t before = receiver.store().place_count();
  EXPECT_THROW(receiver.load_shards(path), DecodeError);
  EXPECT_EQ(receiver.store().place_count(), before);
  std::filesystem::remove(path);
}

TEST(ResidencyFormat, FlippedSegmentChecksumRejected) {
  VisualPrintServer server(small_server());
  Rng rng(61);
  server.ingest_wardrive("hall", random_mappings(rng, 40, {0, 0, 0}));
  Bytes blob = server.serialize();

  // The last byte of a v4 file is the last byte of the final uncompressed
  // segment: only its crc32 can notice the flip.
  blob[blob.size() - 1] ^= 0x01;
  try {
    VisualPrintServer::deserialize(blob);
    FAIL() << "corrupt segment accepted";
  } catch (const DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST(ResidencyFormat, LegacyV2DatabaseLoadsLazily) {
  // Hand-assembled pre-PQ v2 bytes (the v2 writer's exact layout): lazy
  // registration must manage old formats too — they just load by copy
  // instead of mmap borrow.
  Rng rng(60);
  UniquenessOracle oracle(small_oracle());
  std::vector<Feature> feats;
  for (int i = 0; i < 5; ++i) {
    feats.push_back(make_feature(rng));
    oracle.insert(feats.back().descriptor);
  }

  ByteWriter shard;
  shard.str("old wing");
  shard.str("old wing");
  LshIndexConfig index_cfg;
  shard.u16(static_cast<std::uint16_t>(index_cfg.lsh.tables));
  shard.u16(static_cast<std::uint16_t>(index_cfg.lsh.projections));
  shard.f64(index_cfg.lsh.width);
  shard.u64(index_cfg.lsh.seed);
  shard.u8(index_cfg.multiprobe ? 1 : 0);
  shard.u32(static_cast<std::uint32_t>(index_cfg.max_candidates));
  shard.u32(2);       // neighbors_per_keypoint
  shard.u32(65'000);  // max_match_distance2
  shard.u32(3);       // epoch
  shard.u32(5);       // oracle_version
  shard.blob(zlib_compress(oracle.serialize(), 6));
  shard.u32(static_cast<std::uint32_t>(feats.size()));
  for (std::size_t i = 0; i < feats.size(); ++i) {
    const Descriptor& d = feats[i].descriptor;
    shard.raw(std::span<const std::uint8_t>(d.data(), d.size()));
    shard.f64(1.0 * static_cast<double>(i));
    shard.f64(2.0);
    shard.f64(0.5);
    shard.i32(static_cast<std::int32_t>(i % 2));
    shard.u32(3);
  }

  ByteWriter w;
  w.u32(0x56504442u);  // "VPDB"
  w.u16(2);
  w.str("old wing");
  w.u32(1);
  w.blob(shard.bytes());

  const std::string path = temp_db_path("v2lazy");
  write_bytes(path, w.bytes());
  DbLoadOptions lazy;
  lazy.lazy = true;
  VisualPrintServer server = VisualPrintServer::load(path, lazy);

  // Manifest answers without loading: the registration peek skipped the
  // oracle and keypoint payloads entirely.
  EXPECT_EQ(server.store().default_place(), "old wing");
  EXPECT_EQ(server.store().residency().stats().loads, 0u);
  EXPECT_EQ(server.store().epoch("old wing"), 3u);
  EXPECT_EQ(server.store().storage_mode("old wing"), "exact");
  EXPECT_EQ(server.store().snapshot("old wing"), nullptr);

  // First touch faults the shard in through the legacy parser.
  const auto snap = server.store().fault_in("old wing");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->stored.size(), 5u);
  EXPECT_DOUBLE_EQ(snap->stored[2].position.x, 2.0);
  EXPECT_EQ(server.store().residency().stats().loads, 1u);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// lazy fault-in + LRU budget

TEST(Residency, LazyLoadFaultsOnFirstQuery) {
  const SavedDb db = save_two_wing_db("lazy");
  VisualPrintServer eager = VisualPrintServer::load(db.path);
  DbLoadOptions lazy;
  lazy.lazy = true;
  VisualPrintServer server = VisualPrintServer::load(db.path, lazy);

  // Catalog metadata is served from the manifest, nothing loaded yet.
  const auto places = server.places();
  EXPECT_NE(std::find(places.begin(), places.end(), "wing-a"), places.end());
  EXPECT_NE(std::find(places.begin(), places.end(), "wing-b"), places.end());
  EXPECT_EQ(server.store().epoch("wing-a"), 1u);
  EXPECT_EQ(server.store().storage_mode("wing-b"), "exact");
  EXPECT_EQ(server.store().snapshot("wing-a"), nullptr);
  EXPECT_EQ(server.store().residency().stats().loads, 0u);

  // First query faults exactly wing-a in and fixes the camera where the
  // eager twin does.
  Rng rng_lazy(44), rng_eager(44);
  const LocationResponse r = server.localize_query(db.a.query, rng_lazy);
  const LocationResponse e = eager.localize_query(db.a.query, rng_eager);
  expect_good_fix(r, db.a, "wing-a");
  expect_good_fix(e, db.a, "wing-a");

  const auto stats = server.store().residency().stats();
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(server.store().snapshot("wing-b"), nullptr);

  // The faulted shard is bit-identical to the eagerly loaded one.
  const auto lazy_shard = server.store().snapshot("wing-a");
  const auto eager_shard = eager.store().snapshot("wing-a");
  ASSERT_NE(lazy_shard, nullptr);
  ASSERT_NE(eager_shard, nullptr);
  expect_same_shard(*lazy_shard, *eager_shard);

  // Second identical query is a warm hit: no further loads.
  Rng rng_again(44);
  expect_good_fix(server.localize_query(db.a.query, rng_again), db.a,
                  "wing-a");
  EXPECT_EQ(server.store().residency().stats().loads, 1u);
  EXPECT_GE(server.store().residency().stats().hits, 1u);
  std::filesystem::remove(db.path);
}

TEST(Residency, SerializeFaultsEverythingIn) {
  const SavedDb db = save_two_wing_db("serialize");
  VisualPrintServer eager = VisualPrintServer::load(db.path);
  DbLoadOptions lazy;
  lazy.lazy = true;
  lazy.resident_budget = 1;  // nothing stays resident
  VisualPrintServer server = VisualPrintServer::load(db.path, lazy);

  // A budget-capped lazy server still saves its complete database, byte
  // for byte what the eager twin saves.
  EXPECT_EQ(server.serialize(), eager.serialize());
  std::filesystem::remove(db.path);
}

TEST(Residency, SingleFlightColdFault) {
  const std::string path = temp_db_path("singleflight");
  {
    VisualPrintServer build(small_server());
    Rng rng(71);
    build.ingest_wardrive("hall", random_mappings(rng, 200, {0, 0, 0}));
    build.save(path);
  }
  DbLoadOptions lazy;
  lazy.lazy = true;
  VisualPrintServer server = VisualPrintServer::load(path, lazy);

  constexpr int kThreads = 8;
  std::barrier gate(kThreads);
  std::vector<std::shared_ptr<const PlaceShard>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      got[static_cast<std::size_t>(t)] = server.store().fault_in("hall");
    });
  }
  for (auto& th : threads) th.join();

  for (const auto& shard : got) {
    ASSERT_NE(shard, nullptr);
    EXPECT_EQ(shard->stored.size(), 200u);
  }
  // Exactly one loader ran; everyone else either waited on it (a miss)
  // or arrived after the install (a hit) — never a second load.
  const auto stats = server.store().residency().stats();
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_GE(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kThreads));
  std::filesystem::remove(path);
}

TEST(Residency, EvictionKeepsResidentBytesUnderBudget) {
  const std::string path = temp_db_path("budget");
  constexpr int kPlaces = 6;
  {
    VisualPrintServer build(small_server());
    Rng rng(72);
    for (int p = 0; p < kPlaces; ++p) {
      build.ingest_wardrive("place-" + std::to_string(p),
                            random_mappings(rng, 150, {double(p) * 3, 0, 0}));
    }
    build.save(path);
  }
  DbLoadOptions lazy;
  lazy.lazy = true;

  // Uncapped twin: measure full residency and capture reference state.
  VisualPrintServer full = VisualPrintServer::load(path, lazy);
  for (int p = 0; p < kPlaces; ++p) {
    ASSERT_NE(full.store().fault_in("place-" + std::to_string(p)), nullptr);
  }
  const std::size_t all_bytes = full.store().residency().stats().resident_bytes;
  ASSERT_GT(all_bytes, 0u);

  // Budget roughly a quarter of the total: every query still answers
  // correctly, and the ledger never exceeds the budget after an install.
  DbLoadOptions capped = lazy;
  capped.resident_budget = all_bytes / 4;
  VisualPrintServer server = VisualPrintServer::load(path, capped);
  for (int round = 0; round < 3; ++round) {
    for (int p = 0; p < kPlaces; ++p) {
      const std::string place = "place-" + std::to_string(p);
      const auto shard = server.store().fault_in(place);
      ASSERT_NE(shard, nullptr);
      const auto twin = full.store().fault_in(place);
      ASSERT_EQ(shard->stored.size(), twin->stored.size());
      // Re-faulted content is bit-identical to the never-evicted twin.
      for (std::size_t i = 0; i < shard->stored.size(); i += 37) {
        EXPECT_EQ(shard->stored[i].position.x, twin->stored[i].position.x);
        EXPECT_EQ(shard->stored[i].source_id, twin->stored[i].source_id);
        EXPECT_EQ(shard->index.descriptor(static_cast<std::uint32_t>(i)),
                  twin->index.descriptor(static_cast<std::uint32_t>(i)));
      }
      const auto stats = server.store().residency().stats();
      EXPECT_LE(stats.resident_bytes, capped.resident_budget)
          << "round " << round << " place " << p;
    }
  }
  const auto stats = server.store().residency().stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.loads, static_cast<std::uint64_t>(kPlaces));
  // +1: the builder server's (empty) default place rides along in the
  // saved file and registers cold like any other shard.
  EXPECT_EQ(stats.registered, static_cast<std::size_t>(kPlaces) + 1);
  // Evicted places never leave the catalog.
  EXPECT_EQ(server.store().place_count(),
            static_cast<std::size_t>(kPlaces) + 1);
  std::filesystem::remove(path);
}

TEST(Residency, QueryRacingEvictionKeepsSnapshotValidAndRefaultsIdentically) {
  const SavedDb db = save_two_wing_db("race");
  VisualPrintServer eager = VisualPrintServer::load(db.path);
  DbLoadOptions lazy;
  lazy.lazy = true;
  VisualPrintServer server = VisualPrintServer::load(db.path, lazy);

  // Pin wing-a the way an in-flight query would: hold its snapshot.
  const auto pinned = server.store().fault_in("wing-a");
  ASSERT_NE(pinned, nullptr);

  // Evict it (budget smaller than any shard). The snapshot map drops the
  // shard but our shared_ptr — and the mmap keepalive behind its borrowed
  // buffers — keeps it fully usable: the racing query still gets its fix.
  server.store().set_resident_budget(1);
  EXPECT_EQ(server.store().snapshot("wing-a"), nullptr);
  EXPECT_GE(server.store().residency().stats().evictions, 1u);

  Rng rng_pinned(44);
  const LocationResponse r = pinned->localize(db.a.query, rng_pinned);
  expect_good_fix(r, db.a, "wing-a");

  // A fresh query re-faults the shard; the reloaded shard is bit-identical
  // to the never-evicted eager twin and still produces the fix.
  server.store().set_resident_budget(0);
  Rng rng_refault(44);
  const LocationResponse r2 = server.localize_query(db.a.query, rng_refault);
  expect_good_fix(r2, db.a, "wing-a");
  EXPECT_EQ(server.store().residency().stats().loads, 2u);
  const auto refaulted = server.store().snapshot("wing-a");
  const auto twin = eager.store().snapshot("wing-a");
  ASSERT_NE(refaulted, nullptr);
  ASSERT_NE(twin, nullptr);
  expect_same_shard(*refaulted, *twin);
  std::filesystem::remove(db.path);
}

TEST(Residency, WritePinsShardAgainstEviction) {
  const std::string path = temp_db_path("pin");
  {
    VisualPrintServer build(small_server());
    Rng rng(73);
    build.ingest_wardrive("hall", random_mappings(rng, 100, {0, 0, 0}));
    build.ingest_wardrive("attic", random_mappings(rng, 100, {5, 0, 0}));
    build.save(path);
  }
  DbLoadOptions lazy;
  lazy.lazy = true;
  VisualPrintServer server = VisualPrintServer::load(path, lazy);

  // A write faults the shard in, seeds its builder from the loaded
  // snapshot (read-your-writes over the mmap'd state), and pins it: the
  // place has diverged from its backing file and must never be evicted.
  Rng rng(74);
  server.store().ingest("hall", make_feature(rng), {1, 2, 3});
  EXPECT_EQ(server.store().residency().state("hall"),
            ShardResidencyManager::State::kPinned);
  const auto snap = server.store().snapshot("hall");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->stored.size(), 101u);
  EXPECT_DOUBLE_EQ(snap->stored.back().position.z, 3.0);

  // Even a zero-byte budget cannot push the pinned shard out; the cold
  // sibling keeps cycling normally.
  server.store().set_resident_budget(1);
  EXPECT_NE(server.store().snapshot("hall"), nullptr);
  ASSERT_NE(server.store().fault_in("attic"), nullptr);
  EXPECT_NE(server.store().snapshot("hall"), nullptr);
  std::filesystem::remove(path);
}

TEST(Residency, ColdFaultOnCorruptSegmentThrowsAndStaysCold) {
  const std::string path = temp_db_path("corruptfault");
  {
    VisualPrintServer build(small_server());
    Rng rng(75);
    build.ingest_wardrive("hall", random_mappings(rng, 60, {0, 0, 0}));
    build.save(path);
  }
  // Corrupt the final segment byte: the header still parses, so lazy
  // registration succeeds — the damage is only discoverable at fault
  // time, and must not wedge the place in a loading state.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    const char flip = 0x01;
    f.write(&flip, 1);
  }
  DbLoadOptions lazy;
  lazy.lazy = true;
  VisualPrintServer server = VisualPrintServer::load(path, lazy);
  EXPECT_EQ(server.store().epoch("hall"), 1u);  // manifest still answers

  for (int attempt = 0; attempt < 2; ++attempt) {
    EXPECT_THROW(server.store().fault_in("hall"), DecodeError) << attempt;
    EXPECT_EQ(server.store().snapshot("hall"), nullptr);
    EXPECT_EQ(server.store().residency().state("hall"),
              ShardResidencyManager::State::kCold);
  }
  std::filesystem::remove(path);
}

TEST(Residency, ConcurrentFaultEvictChurnSoak) {
  // TSan soak (scripts/tier1.sh): concurrent queries over more places
  // than the budget admits, so faults, single-flight waits, installs,
  // evictions, and borrowed-buffer reads all race. Queries are cheap
  // (random descriptors rarely cluster), keeping the soak about the
  // residency machinery, not the solver.
  const std::string path = temp_db_path("churn");
  constexpr int kPlaces = 6;
  {
    VisualPrintServer build(small_server());
    Rng rng(76);
    for (int p = 0; p < kPlaces; ++p) {
      build.ingest_wardrive("place-" + std::to_string(p),
                            random_mappings(rng, 120, {double(p) * 3, 0, 0}));
    }
    build.save(path);
  }
  DbLoadOptions lazy;
  lazy.lazy = true;
  VisualPrintServer server = VisualPrintServer::load(path, lazy);
  {
    // Budget ≈ two shards: measure one resident shard, then cap.
    ASSERT_NE(server.store().fault_in("place-0"), nullptr);
    const std::size_t one = server.store().residency().stats().resident_bytes;
    server.store().set_resident_budget(2 * one + one / 2);
  }

  constexpr int kThreads = 8;
  constexpr int kQueries = 40;
  std::atomic<int> failures{0};
  std::barrier gate(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + static_cast<std::uint64_t>(t));
      gate.arrive_and_wait();
      for (int i = 0; i < kQueries; ++i) {
        const int p = static_cast<int>(rng.uniform_u64(kPlaces));
        const auto shard =
            server.store().fault_in("place-" + std::to_string(p));
        if (shard == nullptr || shard->stored.size() != 120u) {
          ++failures;
          continue;
        }
        FingerprintQuery q;
        q.place = shard->place;
        q.image_width = 640;
        q.image_height = 480;
        q.fov_h = 1.15f;
        for (int k = 0; k < 5; ++k) q.features.push_back(make_feature(rng));
        Rng qrng(rng.next_u64());
        (void)server.localize_query(q, qrng);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const auto stats = server.store().residency().stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(stats.resident_bytes, stats.budget_bytes);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vp
