// Loopback tests for the TCP transport: framing, EOF semantics, oversized
// frames, and a full request/response round trip of real wire messages.
#include <gtest/gtest.h>

#include <thread>

#include "net/tcp.hpp"
#include "net/wire.hpp"

namespace vp {
namespace {

TEST(Tcp, MessageRoundtripOverLoopback) {
  TcpListener listener(0);
  const std::uint16_t port = listener.port();
  ASSERT_GT(port, 0);

  std::thread server([&] {
    Socket client = listener.accept_one();
    Bytes msg;
    while (client.recv_message(msg)) {
      // Echo with a prefix.
      Bytes reply{0xEE};
      reply.insert(reply.end(), msg.begin(), msg.end());
      client.send_message(reply);
    }
  });

  Socket sock = tcp_connect("127.0.0.1", port);
  const Bytes payload{1, 2, 3, 4, 5};
  sock.send_message(payload);
  Bytes reply;
  ASSERT_TRUE(sock.recv_message(reply));
  ASSERT_EQ(reply.size(), 6u);
  EXPECT_EQ(reply[0], 0xEE);
  EXPECT_EQ(reply[5], 5);

  // Empty message is legal framing.
  sock.send_message({});
  ASSERT_TRUE(sock.recv_message(reply));
  EXPECT_EQ(reply.size(), 1u);

  sock.close();
  server.join();
}

TEST(Tcp, CleanEofReturnsFalse) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket client = listener.accept_one();
    client.close();  // immediate hangup
  });
  Socket sock = tcp_connect("127.0.0.1", listener.port());
  Bytes msg;
  EXPECT_FALSE(sock.recv_message(msg));
  server.join();
}

TEST(Tcp, OversizedFrameRejected) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket client = listener.accept_one();
    // Hand-craft a frame header claiming 1 GB.
    ByteWriter w;
    w.u32(1u << 30);
    client.send_all(w.bytes());
    // Keep the connection open long enough for the client to read it.
    Bytes sink;
    (void)client.recv_message(sink);
  });
  Socket sock = tcp_connect("127.0.0.1", listener.port());
  Bytes msg;
  EXPECT_THROW(sock.recv_message(msg, 1024 * 1024), DecodeError);
  sock.close();
  server.join();
}

TEST(Tcp, WireMessagesSurviveTransport) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket client = listener.accept_one();
    Bytes msg;
    while (client.recv_message(msg)) {
      const FingerprintQuery q = FingerprintQuery::decode(msg);
      LocationResponse resp;
      resp.frame_id = q.frame_id;
      resp.found = true;
      resp.position = {1, 2, 3};
      resp.matched_keypoints = static_cast<std::uint32_t>(q.features.size());
      client.send_message(resp.encode());
    }
  });

  Socket sock = tcp_connect("127.0.0.1", listener.port());
  FingerprintQuery q;
  q.frame_id = 42;
  q.features.resize(20);
  sock.send_message(q.encode());
  Bytes reply;
  ASSERT_TRUE(sock.recv_message(reply));
  const LocationResponse resp = LocationResponse::decode(reply);
  EXPECT_EQ(resp.frame_id, 42u);
  EXPECT_TRUE(resp.found);
  EXPECT_EQ(resp.matched_keypoints, 20u);
  sock.close();
  server.join();
}

TEST(Tcp, ConnectToClosedPortFails) {
  // Grab an ephemeral port, close it, then connect: must throw.
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  EXPECT_THROW(tcp_connect("127.0.0.1", dead_port), IoError);
}

TEST(Tcp, InvalidAddressRejected) {
  EXPECT_THROW(tcp_connect("not-an-address", 1234), IoError);
}

}  // namespace
}  // namespace vp
