// Loopback tests for the TCP transport: framing, EOF semantics, oversized
// frames, deadlines, connect timeouts, the serve() error-reply contract,
// and a full request/response round trip of real wire messages.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/tcp.hpp"
#include "net/wire.hpp"

namespace vp {
namespace {

TEST(Tcp, MessageRoundtripOverLoopback) {
  TcpListener listener(0);
  const std::uint16_t port = listener.port();
  ASSERT_GT(port, 0);

  std::thread server([&] {
    Socket client = listener.accept_one();
    Bytes msg;
    while (client.recv_message(msg)) {
      // Echo with a prefix.
      Bytes reply{0xEE};
      reply.insert(reply.end(), msg.begin(), msg.end());
      client.send_message(reply);
    }
  });

  Socket sock = tcp_connect("127.0.0.1", port);
  const Bytes payload{1, 2, 3, 4, 5};
  sock.send_message(payload);
  Bytes reply;
  ASSERT_TRUE(sock.recv_message(reply));
  ASSERT_EQ(reply.size(), 6u);
  EXPECT_EQ(reply[0], 0xEE);
  EXPECT_EQ(reply[5], 5);

  // Empty message is legal framing.
  sock.send_message({});
  ASSERT_TRUE(sock.recv_message(reply));
  EXPECT_EQ(reply.size(), 1u);

  sock.close();
  server.join();
}

TEST(Tcp, CleanEofReturnsFalse) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket client = listener.accept_one();
    client.close();  // immediate hangup
  });
  Socket sock = tcp_connect("127.0.0.1", listener.port());
  Bytes msg;
  EXPECT_FALSE(sock.recv_message(msg));
  server.join();
}

TEST(Tcp, OversizedFrameRejected) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket client = listener.accept_one();
    // Hand-craft a frame header claiming 1 GB.
    ByteWriter w;
    w.u32(1u << 30);
    client.send_all(w.bytes());
    // Keep the connection open long enough for the client to read it.
    Bytes sink;
    (void)client.recv_message(sink);
  });
  Socket sock = tcp_connect("127.0.0.1", listener.port());
  Bytes msg;
  EXPECT_THROW(sock.recv_message(msg, 1024 * 1024), DecodeError);
  sock.close();
  server.join();
}

TEST(Tcp, WireMessagesSurviveTransport) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket client = listener.accept_one();
    Bytes msg;
    while (client.recv_message(msg)) {
      const FingerprintQuery q = FingerprintQuery::decode(msg);
      LocationResponse resp;
      resp.frame_id = q.frame_id;
      resp.found = true;
      resp.position = {1, 2, 3};
      resp.matched_keypoints = static_cast<std::uint32_t>(q.features.size());
      client.send_message(resp.encode());
    }
  });

  Socket sock = tcp_connect("127.0.0.1", listener.port());
  FingerprintQuery q;
  q.frame_id = 42;
  q.features.resize(20);
  sock.send_message(q.encode());
  Bytes reply;
  ASSERT_TRUE(sock.recv_message(reply));
  const LocationResponse resp = LocationResponse::decode(reply);
  EXPECT_EQ(resp.frame_id, 42u);
  EXPECT_TRUE(resp.found);
  EXPECT_EQ(resp.matched_keypoints, 20u);
  sock.close();
  server.join();
}

TEST(Tcp, ConnectToClosedPortFails) {
  // Grab an ephemeral port, close it, then connect: must throw.
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  EXPECT_THROW(tcp_connect("127.0.0.1", dead_port), IoError);
}

TEST(Tcp, InvalidAddressRejected) {
  EXPECT_THROW(tcp_connect("not-an-address", 1234), IoError);
}

TEST(Tcp, ConnectRefusedFailsFastEvenWithTimeout) {
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  // Refusal is not a timeout: the non-blocking connect path must still
  // report it as IoError, immediately.
  try {
    tcp_connect("127.0.0.1", dead_port, /*connect_timeout_ms=*/2000);
    FAIL() << "expected IoError";
  } catch (const TimeoutError&) {
    FAIL() << "refusal misreported as timeout";
  } catch (const IoError&) {
    // expected
  }
}

TEST(Tcp, ConnectTimesOutWhenPeerNeverCompletesHandshake) {
  // A listener with a tiny backlog that never accepts: once the accept
  // queue fills, the kernel drops further SYNs, so a bounded connect must
  // throw TimeoutError instead of sitting in the SYN retry schedule.
  TcpListener listener(0, /*backlog=*/1);
  std::vector<Socket> queued;
  bool timed_out = false;
  for (int i = 0; i < 8 && !timed_out; ++i) {
    try {
      queued.push_back(
          tcp_connect("127.0.0.1", listener.port(), /*connect_timeout_ms=*/250));
    } catch (const TimeoutError&) {
      timed_out = true;
    }
  }
  EXPECT_TRUE(timed_out);
}

TEST(Tcp, RecvDeadlineThrowsTimeoutError) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket client = listener.accept_one();
    // Send nothing; wait for the client to give up.
    Bytes sink;
    (void)client.recv_message(sink);
  });
  Socket sock = tcp_connect("127.0.0.1", listener.port());
  sock.set_recv_timeout(100);
  Bytes msg;
  EXPECT_THROW(sock.recv_message(msg), TimeoutError);
  sock.close();
  server.join();
}

TEST(Tcp, MidMessageEofThrowsIoError) {
  TcpListener listener(0);
  std::thread server([&] {
    Socket client = listener.accept_one();
    // Header promises 100 bytes, deliver 10, hang up.
    ByteWriter w;
    w.u32(100);
    for (int i = 0; i < 10; ++i) w.u8(0x55);
    client.send_all(w.bytes());
  });
  Socket sock = tcp_connect("127.0.0.1", listener.port());
  Bytes msg;
  EXPECT_THROW(sock.recv_message(msg), IoError);
  server.join();
}

TEST(Tcp, RecvMessageRejectsLengthLieBeforeAllocating) {
  // The length check happens before the payload buffer is resized: a
  // 0xFFFFFFFF header against a 1 KB cap must throw, not allocate 4 GB.
  TcpListener listener(0);
  std::thread server([&] {
    Socket client = listener.accept_one();
    ByteWriter w;
    w.u32(0xFFFFFFFFu);
    client.send_all(w.bytes());
    Bytes sink;
    (void)client.recv_message(sink);
  });
  Socket sock = tcp_connect("127.0.0.1", listener.port());
  Bytes msg;
  EXPECT_THROW(sock.recv_message(msg, 1024), DecodeError);
  sock.close();
  server.join();
}

TEST(Tcp, ServeTurnsHandlerFailuresIntoErrorRepliesAndSurvives) {
  TcpListener listener(0);
  std::atomic<bool> run{true};
  ServeStats stats;
  ServeOptions options;
  options.poll_interval_ms = 10;
  std::thread server([&] {
    listener.serve(
        [](std::span<const std::uint8_t> req) -> Bytes {
          if (!req.empty() && req[0] == 'X') {
            throw std::runtime_error("boom");
          }
          return Bytes(req.begin(), req.end());
        },
        [&] { return run.load(); }, options, &stats);
  });

  Socket sock = tcp_connect("127.0.0.1", listener.port());
  // A failing request gets a structured reply, not a hangup...
  sock.send_message(Bytes{'X'});
  Bytes reply;
  ASSERT_TRUE(sock.recv_message(reply));
  ASSERT_TRUE(is_error_frame(reply));
  const ErrorResponse err = ErrorResponse::decode(reply);
  EXPECT_EQ(err.code, ErrorResponse::kHandlerFailure);
  EXPECT_EQ(err.message, "boom");
  // ...and the connection is still good for the next request.
  sock.send_message(Bytes{'o', 'k'});
  ASSERT_TRUE(sock.recv_message(reply));
  EXPECT_FALSE(is_error_frame(reply));
  EXPECT_EQ(reply, (Bytes{'o', 'k'}));
  sock.close();

  run.store(false);
  server.join();
  EXPECT_EQ(stats.accepted.load(), 1u);
  EXPECT_EQ(stats.handler_errors.load(), 1u);
  EXPECT_EQ(stats.responses.load(), 2u);
}

TEST(Tcp, ServeAnswersOversizedFrameWithBadRequestThenCloses) {
  TcpListener listener(0);
  std::atomic<bool> run{true};
  ServeStats stats;
  ServeOptions options;
  options.poll_interval_ms = 10;
  options.max_message_bytes = 1024;
  std::thread server([&] {
    listener.serve(
        [](std::span<const std::uint8_t> req) {
          return Bytes(req.begin(), req.end());
        },
        [&] { return run.load(); }, options, &stats);
  });

  Socket sock = tcp_connect("127.0.0.1", listener.port());
  // A bare header claiming 1 MB: unframeable, the stream position is lost.
  ByteWriter w;
  w.u32(1u << 20);
  sock.send_all(w.bytes());
  Bytes reply;
  ASSERT_TRUE(sock.recv_message(reply));
  ASSERT_TRUE(is_error_frame(reply));
  EXPECT_EQ(ErrorResponse::decode(reply).code, ErrorResponse::kBadRequest);
  // The server cannot resynchronize, so it hangs up after the error.
  EXPECT_FALSE(sock.recv_message(reply));
  sock.close();

  run.store(false);
  server.join();
  EXPECT_EQ(stats.decode_errors.load(), 1u);
}

TEST(Tcp, ServeHandlesZeroLengthRequests) {
  TcpListener listener(0);
  std::atomic<bool> run{true};
  ServeOptions options;
  options.poll_interval_ms = 10;
  std::thread server([&] {
    listener.serve(
        [](std::span<const std::uint8_t> req) -> Bytes {
          if (req.empty()) throw DecodeError{"empty request"};
          return Bytes(req.begin(), req.end());
        },
        [&] { return run.load(); }, options);
  });

  Socket sock = tcp_connect("127.0.0.1", listener.port());
  sock.send_message({});  // legal framing, invalid request
  Bytes reply;
  ASSERT_TRUE(sock.recv_message(reply));
  ASSERT_TRUE(is_error_frame(reply));
  EXPECT_EQ(ErrorResponse::decode(reply).code, ErrorResponse::kBadRequest);
  sock.close();

  run.store(false);
  server.join();
}

}  // namespace
}  // namespace vp
