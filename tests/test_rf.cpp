// Tests for the RF-fingerprinting domain extension.
#include <gtest/gtest.h>

#include "hashing/oracle.hpp"
#include "rf/rssi.hpp"

namespace vp {
namespace {

RfEnvironmentConfig small_env() {
  RfEnvironmentConfig cfg;
  cfg.width = 40;
  cfg.depth = 20;
  cfg.num_aps = 16;
  return cfg;
}

TEST(Rf, RssiDecaysWithDistance) {
  const RfEnvironment env(small_env());
  const auto& ap = env.access_points()[0];
  Rng rng(1);
  // Average over noise: near the AP must be stronger than far away.
  double near = 0, far = 0;
  for (int i = 0; i < 20; ++i) {
    near += env.measure_rssi(ap.position + Vec3{1, 0, -1}, rng)[0];
    far += env.measure_rssi(ap.position + Vec3{25, 8, -1}, rng)[0];
  }
  EXPECT_GT(near / 20, far / 20 + 10.0);
}

TEST(Rf, RepeatedVisitsAgree) {
  const RfEnvironment env(small_env());
  Rng rng(2);
  const Vec3 spot{10, 10, 1.5};
  const Descriptor a = env.fingerprint(spot, rng);
  const Descriptor b = env.fingerprint(spot, rng);
  // Same spot, different measurement noise: descriptors stay close.
  EXPECT_LT(descriptor_distance2(a, b), 3'000u);
}

TEST(Rf, DifferentSpotsDiffer) {
  const RfEnvironment env(small_env());
  Rng rng(3);
  const Descriptor a = env.fingerprint({5, 5, 1.5}, rng);
  const Descriptor b = env.fingerprint({35, 15, 1.5}, rng);
  EXPECT_GT(descriptor_distance2(a, b), 10'000u);
}

TEST(Rf, DescriptorQuantizationBounds) {
  const RfEnvironment env(small_env());
  Rng rng(4);
  const Descriptor d = env.fingerprint({20, 10, 1.5}, rng);
  // Unused dimensions (beyond num_aps) must be zero.
  for (std::size_t i = 16; i < kDescriptorDims; ++i) {
    EXPECT_EQ(d[i], 0);
  }
  // At least a few APs should be audible mid-building.
  int nonzero = 0;
  for (std::size_t i = 0; i < 16; ++i) nonzero += d[i] > 0;
  EXPECT_GE(nonzero, 3);
}

TEST(Rf, InaudibleMapsToZero) {
  RfEnvironmentConfig cfg = small_env();
  cfg.noise_floor_dbm = -20.0;  // absurdly high floor: nothing audible
  const RfEnvironment env(cfg);
  Rng rng(5);
  const Descriptor d = env.fingerprint({20, 10, 1.5}, rng);
  for (auto v : d) EXPECT_EQ(v, 0);
}

TEST(Rf, OracleSeparatesRevisitedFromFresh) {
  // The cross-domain claim: the visual uniqueness oracle ranks RF
  // fingerprints the same way. Revisited locations score high counts;
  // a location surveyed once scores low.
  const RfEnvironment env(small_env());
  OracleConfig oracle_cfg;
  oracle_cfg.capacity = 30'000;
  oracle_cfg.lsh.width = 300.0;
  UniquenessOracle oracle(oracle_cfg);
  Rng rng(6);
  const Vec3 popular{12, 8, 1.5};
  const Vec3 rare{33, 17, 1.5};
  for (int i = 0; i < 25; ++i) oracle.insert(env.fingerprint(popular, rng));
  oracle.insert(env.fingerprint(rare, rng));

  const auto popular_count = oracle.count(env.fingerprint(popular, rng));
  const auto rare_count = oracle.count(env.fingerprint(rare, rng));
  EXPECT_GT(popular_count, rare_count + 5);
}

}  // namespace
}  // namespace vp
