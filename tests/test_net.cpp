#include <gtest/gtest.h>

#include "imaging/codec.hpp"
#include "net/link.hpp"
#include "net/wire.hpp"
#include "util/rng.hpp"

namespace vp {
namespace {

FingerprintQuery sample_query(std::size_t n_features) {
  FingerprintQuery q;
  q.frame_id = 7;
  q.capture_time = 1.25;
  q.image_width = 920;
  q.image_height = 540;
  q.fov_h = 1.1f;
  q.features.resize(n_features);
  for (std::size_t i = 0; i < n_features; ++i) {
    q.features[i].keypoint.x = static_cast<float>(i);
    q.features[i].descriptor[i % kDescriptorDims] =
        static_cast<std::uint8_t>(i);
  }
  return q;
}

/// A v4 compact query: arbitrary code bytes (wire tests need no trained
/// codebook), quarter-pixel-friendly coordinates, and a codebook epoch.
FingerprintQuery sample_compact_query(std::size_t n_features) {
  FingerprintQuery q = sample_query(n_features);
  q.place = "atrium";
  q.oracle_epoch = 2;
  q.codebook_epoch = 2;
  for (std::size_t i = 0; i < n_features; ++i) {
    q.features[i].keypoint.x = static_cast<float>(i) + 0.25f;
    q.features[i].keypoint.y = 3.5f;
  }
  q.codes.resize(n_features * kPqCodeBytes);
  for (std::size_t b = 0; b < q.codes.size(); ++b) {
    q.codes[b] = static_cast<std::uint8_t>(b * 37 + 5);
  }
  return q;
}

TEST(Wire, FingerprintQueryRoundtrip) {
  const FingerprintQuery q = sample_query(5);
  const Bytes b = q.encode();
  EXPECT_EQ(b.size(), q.wire_size());
  const FingerprintQuery back = FingerprintQuery::decode(b);
  EXPECT_EQ(back.frame_id, 7u);
  EXPECT_DOUBLE_EQ(back.capture_time, 1.25);
  EXPECT_EQ(back.image_width, 920);
  ASSERT_EQ(back.features.size(), 5u);
  EXPECT_EQ(back.features[3].keypoint.x, 3.0f);
  EXPECT_EQ(back.features[4].descriptor[4], 4);
  EXPECT_TRUE(back.place.empty());
  EXPECT_EQ(back.oracle_epoch, 0u);
}

TEST(Wire, FingerprintQueryCarriesPlaceAndEpoch) {
  FingerprintQuery q = sample_query(2);
  q.place = "louvre-denon";
  q.oracle_epoch = 9;
  const Bytes b = q.encode();
  EXPECT_EQ(b.size(), q.wire_size());
  const FingerprintQuery back = FingerprintQuery::decode(b);
  EXPECT_EQ(back.place, "louvre-denon");
  EXPECT_EQ(back.oracle_epoch, 9u);
  ASSERT_EQ(back.features.size(), 2u);
}

TEST(Wire, FingerprintQueryV1FrameDecodes) {
  // Pre-shard v1 frame: no place/epoch fields; both must default.
  ByteWriter w;
  w.u32(0x56505121u);  // "VPQ!"
  w.u16(1);
  w.u32(7);    // frame_id
  w.f64(1.0);  // capture_time
  w.u16(920);
  w.u16(540);
  w.f32(1.1f);
  w.u32(0);  // feature count
  const FingerprintQuery back = FingerprintQuery::decode(w.bytes());
  EXPECT_EQ(back.frame_id, 7u);
  EXPECT_TRUE(back.place.empty());
  EXPECT_EQ(back.oracle_epoch, 0u);
  EXPECT_TRUE(back.features.empty());
}

TEST(Wire, FingerprintQueryV3TraceRoundtrip) {
  FingerprintQuery q = sample_query(3);
  q.place = "atrium";
  q.oracle_epoch = 4;
  q.trace_id = 0xDEADBEEFCAFE0123ull;
  q.trace_flags = 0x01;  // sampled
  const Bytes b = q.encode();
  EXPECT_EQ(b.size(), q.wire_size());
  const FingerprintQuery back = FingerprintQuery::decode(b);
  EXPECT_EQ(back.trace_id, 0xDEADBEEFCAFE0123ull);
  EXPECT_EQ(back.trace_flags, 0x01);
  EXPECT_EQ(back.place, "atrium");
  EXPECT_EQ(back.oracle_epoch, 4u);
  ASSERT_EQ(back.features.size(), 3u);
}

TEST(Wire, UntracedQueryEncodesAsV2) {
  // trace_id == 0 must encode byte-identically to a pre-trace client: the
  // version stays 2 and no trailing trace fields appear, so traced and
  // untraced peers interoperate without negotiation.
  FingerprintQuery q = sample_query(2);
  const Bytes untraced = q.encode();
  EXPECT_EQ(untraced[4] | (untraced[5] << 8), 2);  // version u16, LE
  q.trace_id = 77;
  const Bytes traced = q.encode();
  EXPECT_EQ(traced[4] | (traced[5] << 8), 3);
  EXPECT_EQ(traced.size(), untraced.size() + 8 + 1);  // id + flags
  const FingerprintQuery back = FingerprintQuery::decode(untraced);
  EXPECT_EQ(back.trace_id, 0u);
  EXPECT_EQ(back.trace_flags, 0);
}

TEST(Wire, QueryV3RejectsZeroTraceId) {
  // A frame claiming v3 but carrying trace_id 0 violates the encode
  // invariant (0 would silently downgrade on re-encode) and is rejected.
  FingerprintQuery q = sample_query(1);
  q.trace_id = 1;
  Bytes b = q.encode();
  for (std::size_t i = 9; i >= 2; --i) b[b.size() - i] = 0;  // zero the id
  EXPECT_THROW(FingerprintQuery::decode(b), DecodeError);
}

TEST(Wire, CompactQueryRoundtrip) {
  FingerprintQuery q = sample_compact_query(5);
  const Bytes b = q.encode();
  EXPECT_EQ(b.size(), q.wire_size());
  EXPECT_EQ(b[4] | (b[5] << 8), 4);  // version u16, LE
  const FingerprintQuery back = FingerprintQuery::decode(b);
  EXPECT_TRUE(back.compact());
  EXPECT_EQ(back.place, "atrium");
  EXPECT_EQ(back.oracle_epoch, 2u);
  EXPECT_EQ(back.codebook_epoch, 2u);
  ASSERT_EQ(back.features.size(), 5u);
  EXPECT_EQ(back.codes, q.codes);
  // Coordinates survive at quarter-pixel precision; the raw-only fields
  // (scale, orientation, descriptor) come back zeroed.
  EXPECT_FLOAT_EQ(back.features[3].keypoint.x, 3.25f);
  EXPECT_FLOAT_EQ(back.features[3].keypoint.y, 3.5f);
  EXPECT_EQ(back.features[3].keypoint.scale, 0.0f);
  EXPECT_EQ(back.features[4].descriptor,
            Descriptor{});  // codes replace descriptors on the wire
}

TEST(Wire, CompactQueryCarriesTrace) {
  FingerprintQuery q = sample_compact_query(2);
  q.trace_id = 0xABCDEF01ull;
  q.trace_flags = 0x01;
  const Bytes b = q.encode();
  EXPECT_EQ(b[4] | (b[5] << 8), 4);  // compact subsumes the trace version
  const FingerprintQuery back = FingerprintQuery::decode(b);
  EXPECT_EQ(back.trace_id, 0xABCDEF01ull);
  EXPECT_EQ(back.trace_flags, 0x01);
  EXPECT_TRUE(back.compact());
}

TEST(Wire, CompactQueryShrinksFeaturePayloadSixfold) {
  // The tentpole claim: 20 bytes per feature (u16 quarter-pixel x, y +
  // 16-byte PQ code) against 144 raw bytes — a 7.2x feature payload cut,
  // comfortably above the 6x acceptance floor.
  EXPECT_EQ(kCompactFeatureWireBytes, 20u);
  const std::size_t n = 200;
  FingerprintQuery raw = sample_query(n);
  FingerprintQuery compact = sample_compact_query(n);
  const std::size_t raw_payload = n * kFeatureWireBytes;
  const std::size_t compact_payload = n * kCompactFeatureWireBytes;
  EXPECT_GE(raw_payload, 6 * compact_payload);
  // And end to end, whole frames included, a 200-keypoint upload drops
  // from ~29 KB to ~4 KB.
  EXPECT_GT(raw.wire_size(), 28'000u);
  EXPECT_LT(compact.wire_size(), 4'500u);
  EXPECT_GE(raw.wire_size(), 6 * (compact.wire_size() - 64));
}

TEST(Wire, CompactQueryRejectsZeroCodebookEpoch) {
  // v4 with codebook_epoch 0 violates the encode invariant (0 means "no
  // codebook", which encodes as raw) — a frame claiming otherwise lies.
  FingerprintQuery q = sample_compact_query(1);
  Bytes b = q.encode();
  // codebook_epoch sits after magic(4)+ver(2)+frame(4)+time(8)+w(2)+h(2)+
  // fov(4)+place str(4+6)+oracle_epoch(4).
  const std::size_t epoch_off = 4 + 2 + 4 + 8 + 2 + 2 + 4 + 4 + 6 + 4;
  for (std::size_t i = 0; i < 4; ++i) b[epoch_off + i] = 0;
  EXPECT_THROW(FingerprintQuery::decode(b), DecodeError);
}

TEST(Wire, CompactQueryRejectsCodeCountLies) {
  // Feature count claiming more entries than the remaining bytes hold must
  // throw before any allocation sized by the count.
  FingerprintQuery q = sample_compact_query(3);
  Bytes b = q.encode();
  const std::size_t count_off = 4 + 2 + 4 + 8 + 2 + 2 + 4 + 4 + 6 + 4 + 4;
  for (std::size_t i = 0; i < 4; ++i) b[count_off + i] = 0xFF;
  EXPECT_THROW(FingerprintQuery::decode(b), DecodeError);
}

TEST(Wire, QuerySizeMatchesPaperScale) {
  // 200 keypoints at 144 B each ~ 29 KB: the paper's "short description
  // (~30KB) of the scene".
  const FingerprintQuery q = sample_query(200);
  EXPECT_GT(q.wire_size(), 28'000u);
  EXPECT_LT(q.wire_size(), 32'000u);
}

TEST(Wire, QueryRejectsCorruptMagic) {
  Bytes b = sample_query(2).encode();
  b[0] ^= 0xFF;
  EXPECT_THROW(FingerprintQuery::decode(b), DecodeError);
}

TEST(Wire, QueryRejectsTruncation) {
  Bytes b = sample_query(3).encode();
  b.resize(b.size() - 10);
  EXPECT_THROW(FingerprintQuery::decode(b), DecodeError);
}

TEST(Wire, FrameUploadRoundtrip) {
  FrameUpload f;
  f.frame_id = 9;
  f.capture_time = 2.5;
  f.codec = 1;
  f.payload = {10, 20, 30, 40};
  const FrameUpload back = FrameUpload::decode(f.encode());
  EXPECT_EQ(back.frame_id, 9u);
  EXPECT_EQ(back.codec, 1);
  EXPECT_EQ(back.payload, (Bytes{10, 20, 30, 40}));
}

TEST(Wire, LocationResponseRoundtrip) {
  LocationResponse r;
  r.frame_id = 3;
  r.found = true;
  r.position = {1.5, -2.5, 0.75};
  r.yaw = 0.3;
  r.residual = 0.01;
  r.matched_keypoints = 42;
  r.place_label = "Louvre, Denon Wing";
  const LocationResponse back = LocationResponse::decode(r.encode());
  EXPECT_TRUE(back.found);
  EXPECT_DOUBLE_EQ(back.position.y, -2.5);
  EXPECT_EQ(back.matched_keypoints, 42u);
  EXPECT_EQ(back.place_label, "Louvre, Denon Wing");
  EXPECT_TRUE(back.place.empty());
}

TEST(Wire, LocationResponseCarriesPlace) {
  LocationResponse r;
  r.found = true;
  r.place_label = "Louvre, Denon Wing";
  r.place = "louvre-denon";
  const LocationResponse back = LocationResponse::decode(r.encode());
  EXPECT_EQ(back.place, "louvre-denon");
  EXPECT_EQ(back.place_label, "Louvre, Denon Wing");
}

LocationResponse traced_response() {
  LocationResponse r;
  r.frame_id = 12;
  r.found = true;
  r.position = {0.5, 1.5, 2.5};
  r.place = "atrium";
  r.trace_id = 0xABCDULL;
  r.server_spans = {
      {"server.handle_query", -1, 0.0f, 5.5f},
      {"decode", 0, 0.1f, 0.4f},
      {"lsh.retrieve", 0, 0.6f, 2.0f},
      {"localize.solve", 0, 2.7f, 2.6f},
  };
  return r;
}

TEST(Wire, LocationResponseV3SpanBlockRoundtrip) {
  const LocationResponse r = traced_response();
  const LocationResponse back = LocationResponse::decode(r.encode());
  EXPECT_EQ(back.trace_id, 0xABCDULL);
  ASSERT_EQ(back.server_spans.size(), 4u);
  EXPECT_EQ(back.server_spans[0].name, "server.handle_query");
  EXPECT_EQ(back.server_spans[0].parent, -1);
  EXPECT_EQ(back.server_spans[2].name, "lsh.retrieve");
  EXPECT_EQ(back.server_spans[2].parent, 0);
  EXPECT_FLOAT_EQ(back.server_spans[3].start_ms, 2.7f);
  EXPECT_FLOAT_EQ(back.server_spans[3].duration_ms, 2.6f);
  EXPECT_EQ(back.place, "atrium");
}

TEST(Wire, UntracedLocationResponseEncodesAsV2) {
  LocationResponse r;
  r.place = "atrium";
  // Spans without a trace id have no correlation key; the frame encodes
  // as v2 and the block is dropped rather than sent unattributable.
  r.server_spans = {{"orphan", -1, 0.0f, 1.0f}};
  const Bytes b = r.encode();
  EXPECT_EQ(b[4] | (b[5] << 8), 2);  // version u16, LE
  const LocationResponse back = LocationResponse::decode(b);
  EXPECT_EQ(back.trace_id, 0u);
  EXPECT_TRUE(back.server_spans.empty());
}

TEST(Wire, SpanBlockRejectsBadParent) {
  // A parent must precede its child (-1 = root): forward and < -1
  // references both break tree reconstruction and are rejected.
  LocationResponse r = traced_response();
  r.server_spans[1].parent = 5;  // forward reference
  EXPECT_THROW(LocationResponse::decode(r.encode()), DecodeError);
  r = traced_response();
  r.server_spans[0].parent = -2;
  EXPECT_THROW(LocationResponse::decode(r.encode()), DecodeError);
}

TEST(Wire, SpanBlockCapsAtMaxWireSpans) {
  // Encode clamps to kMaxWireSpans; a frame *claiming* more is corrupt.
  LocationResponse r = traced_response();
  r.server_spans.assign(WireSpan::kMaxWireSpans + 20, {"s", -1, 0.0f, 0.1f});
  const LocationResponse back = LocationResponse::decode(r.encode());
  EXPECT_EQ(back.server_spans.size(), WireSpan::kMaxWireSpans);

  LocationResponse one = traced_response();
  one.server_spans.resize(1);
  Bytes b = one.encode();
  // Count byte sits before the single 12-byte span record at the tail
  // (u8 name_len + 1-char name + u16 parent + two f32s).
  const std::size_t span_bytes = 1 + one.server_spans[0].name.size() + 2 + 8;
  b[b.size() - span_bytes - 1] = 200;
  EXPECT_THROW(LocationResponse::decode(b), DecodeError);
}

TEST(Wire, OracleDownloadRoundtrip) {
  OracleConfig cfg;
  cfg.capacity = 10'000;
  UniquenessOracle oracle(cfg);
  Rng rng(1);
  Descriptor d;
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.uniform_u64(60));
  for (int i = 0; i < 3; ++i) oracle.insert(d);

  const OracleDownload down = OracleDownload::pack(oracle, 5, "atrium");
  const Bytes wire = down.encode();
  const OracleDownload back = OracleDownload::decode(wire);
  EXPECT_EQ(back.epoch, 5u);
  EXPECT_EQ(back.place, "atrium");
  const UniquenessOracle restored = back.unpack();
  EXPECT_EQ(restored.count(d), oracle.count(d));
}

TEST(Wire, OracleDownloadV1FrameDecodes) {
  // Pre-shard v1 frame: no place field, the old `version` counter reads
  // as the epoch.
  OracleConfig cfg;
  cfg.capacity = 2'000;
  UniquenessOracle oracle(cfg);
  ByteWriter w;
  w.u32(0x56504f21u);  // "VPO!"
  w.u16(1);
  w.u32(7);
  w.blob(zlib_compress(oracle.serialize(), 9));
  const OracleDownload back = OracleDownload::decode(w.bytes());
  EXPECT_EQ(back.epoch, 7u);
  EXPECT_TRUE(back.place.empty());
  EXPECT_EQ(back.unpack().byte_size(), oracle.byte_size());
}

TEST(Wire, OracleDownloadCodebookRoundtrip) {
  OracleConfig cfg;
  cfg.capacity = 2'000;
  UniquenessOracle oracle(cfg);
  Bytes codebook(kPqCodebookBytes);
  for (std::size_t i = 0; i < codebook.size(); ++i) {
    codebook[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  const OracleDownload down =
      OracleDownload::pack(oracle, 4, "atrium", codebook);
  const Bytes wire = down.encode();
  EXPECT_EQ(wire[4] | (wire[5] << 8), 3);  // codebook promotes to v3
  const OracleDownload back = OracleDownload::decode(wire);
  EXPECT_EQ(back.epoch, 4u);
  EXPECT_EQ(back.place, "atrium");
  EXPECT_EQ(back.codebook, codebook);

  // Without a codebook the frame stays byte-identical v2, so pre-compact
  // clients keep decoding downloads unmodified.
  const Bytes plain = OracleDownload::pack(oracle, 4, "atrium").encode();
  EXPECT_EQ(plain[4] | (plain[5] << 8), 2);
  EXPECT_TRUE(OracleDownload::decode(plain).codebook.empty());

  // A v3 frame whose codebook is not exactly kPqCodebookBytes is rejected
  // even when the blob length field tells the truth about the short blob
  // (the codebook is the last field; shrink both consistently).
  Bytes bad = wire;
  const std::size_t len_off = bad.size() - kPqCodebookBytes - 4;
  const std::uint32_t short_len = kPqCodebookBytes - 1;
  for (std::size_t i = 0; i < 4; ++i) {
    bad[len_off + i] = static_cast<std::uint8_t>(short_len >> (8 * i));
  }
  bad.resize(bad.size() - 1);
  EXPECT_THROW(OracleDownload::decode(bad), DecodeError);
}

TEST(Wire, OracleRequestRoundtrip) {
  OracleRequest req;
  req.place = "louvre-denon";
  const OracleRequest back = OracleRequest::decode(req.encode());
  EXPECT_EQ(back.place, "louvre-denon");
  EXPECT_TRUE(OracleRequest::decode(OracleRequest{}.encode()).place.empty());
}

TEST(Wire, OracleDownloadCompresses) {
  OracleConfig cfg;
  cfg.capacity = 50'000;
  UniquenessOracle oracle(cfg);  // nearly empty -> very compressible
  const OracleDownload down = OracleDownload::pack(oracle, 1);
  EXPECT_LT(down.compressed.size(), oracle.serialize().size() / 20);
}

TEST(Wire, OracleDiffReconstructs) {
  OracleConfig cfg;
  cfg.capacity = 10'000;
  UniquenessOracle oracle(cfg);
  Rng rng(2);
  Descriptor d1, d2;
  for (auto& v : d1) v = static_cast<std::uint8_t>(rng.uniform_u64(60));
  for (auto& v : d2) v = static_cast<std::uint8_t>(rng.uniform_u64(60));

  oracle.insert(d1);
  const Bytes v1 = oracle.serialize();
  oracle.insert(d2);
  const Bytes v2 = oracle.serialize();

  const OracleDiff diff = OracleDiff::make(v1, v2, 1, 2);
  const Bytes rebuilt = diff.apply(v1);
  EXPECT_EQ(rebuilt, v2);
  // Diff should be much smaller than the full new snapshot compressed.
  EXPECT_LT(diff.compressed_xor.size(), zlib_compress(v2, 9).size() + 128);
}

TEST(Wire, OracleDiffEncodeRoundtrip) {
  const Bytes old_blob{1, 2, 3, 4};
  const Bytes new_blob{1, 9, 3, 4, 5};
  const OracleDiff d = OracleDiff::make(old_blob, new_blob, 3, 4);
  const OracleDiff back = OracleDiff::decode(d.encode());
  EXPECT_EQ(back.from_version, 3u);
  EXPECT_EQ(back.to_version, 4u);
  EXPECT_EQ(back.apply(old_blob), new_blob);
}

TEST(Wire, StatsRequestSlowLogFormatRoundtrips) {
  StatsRequest req;
  req.format = StatsRequest::kFormatSlowLog;
  const StatsRequest back = StatsRequest::decode(req.encode());
  EXPECT_EQ(back.format, StatsRequest::kFormatSlowLog);
  // One past the newest format is still unknown and must be rejected.
  Bytes b = req.encode();
  b[b.size() - 1] = StatsRequest::kFormatSlowLog + 1;
  EXPECT_THROW(StatsRequest::decode(b), DecodeError);
}

TEST(Wire, ErrorResponseRoundtrip) {
  ErrorResponse e;
  e.code = ErrorResponse::kBadRequest;
  e.message = "frame length 999 exceeds limit";
  const Bytes b = e.encode();
  EXPECT_TRUE(is_error_frame(b));
  const ErrorResponse back = ErrorResponse::decode(b);
  EXPECT_EQ(back.code, ErrorResponse::kBadRequest);
  EXPECT_EQ(back.message, e.message);
}

TEST(Wire, ErrorResponseTruncatesOversizedMessages) {
  ErrorResponse e;
  e.message.assign(10'000, 'x');
  const ErrorResponse back = ErrorResponse::decode(e.encode());
  EXPECT_EQ(back.message.size(), ErrorResponse::kMaxMessageBytes);
}

TEST(Wire, ErrorResponseStaleOracleRoundtrip) {
  ErrorResponse e;
  e.code = ErrorResponse::kStaleOracle;
  e.message = "oracle epoch 3 for place 'atrium' superseded by epoch 5";
  const ErrorResponse back = ErrorResponse::decode(e.encode());
  EXPECT_EQ(back.code, ErrorResponse::kStaleOracle);
  EXPECT_EQ(back.message, e.message);
}

TEST(Wire, ErrorResponseRejectsUnknownCode) {
  ErrorResponse e;
  e.code = ErrorResponse::kOverloaded;
  Bytes b = e.encode();
  b[6] = 0x77;  // code lives after magic (4) + version (2)
  EXPECT_THROW(ErrorResponse::decode(b), DecodeError);
  b[6] = 0;
  EXPECT_THROW(ErrorResponse::decode(b), DecodeError);
}

TEST(Wire, IsErrorFrameOnlyMatchesTheErrorMagic) {
  EXPECT_FALSE(is_error_frame({}));
  EXPECT_FALSE(is_error_frame(Bytes{'V', 'P'}));  // shorter than a magic
  EXPECT_FALSE(is_error_frame(sample_query(1).encode()));
  EXPECT_FALSE(is_error_frame(LocationResponse{}.encode()));
  EXPECT_TRUE(is_error_frame(ErrorResponse{}.encode()));
}

// ---------------------------------------------------------------------------
// Decoder fuzz battery: every message type, attacked three ways. The
// contract under attack is uniform: decode() either succeeds or throws
// DecodeError — never crashes, never hangs, never allocates beyond the
// bytes actually presented.

/// One encoded specimen of every wire message type.
std::vector<std::pair<std::string, Bytes>> wire_specimens() {
  std::vector<std::pair<std::string, Bytes>> specimens;
  specimens.emplace_back("FingerprintQuery", sample_query(3).encode());

  FingerprintQuery traced_q = sample_query(3);
  traced_q.trace_id = 0x1234ABCDull;
  traced_q.trace_flags = 0x01;
  specimens.emplace_back("FingerprintQueryV3", traced_q.encode());

  specimens.emplace_back("FingerprintQueryV4",
                         sample_compact_query(3).encode());

  specimens.emplace_back("LocationResponseV3", traced_response().encode());

  FrameUpload frame;
  frame.frame_id = 11;
  frame.codec = 1;
  frame.payload = {9, 8, 7, 6, 5};
  specimens.emplace_back("FrameUpload", frame.encode());

  LocationResponse loc;
  loc.frame_id = 5;
  loc.found = true;
  loc.position = {1, 2, 3};
  loc.place_label = "Demo Gallery";
  specimens.emplace_back("LocationResponse", loc.encode());

  OracleConfig cfg;
  cfg.capacity = 2000;
  UniquenessOracle oracle(cfg);
  Descriptor d{};
  d[0] = 42;
  oracle.insert(d);
  specimens.emplace_back("OracleDownload",
                         OracleDownload::pack(oracle, 3).encode());

  Bytes codebook(kPqCodebookBytes);
  for (std::size_t i = 0; i < codebook.size(); ++i) {
    codebook[i] = static_cast<std::uint8_t>(i * 13 + 1);
  }
  specimens.emplace_back(
      "OracleDownloadV3",
      OracleDownload::pack(oracle, 3, "atrium", codebook).encode());

  const Bytes old_blob{1, 2, 3, 4};
  const Bytes new_blob{1, 9, 3, 4, 5};
  specimens.emplace_back("OracleDiff",
                         OracleDiff::make(old_blob, new_blob, 1, 2).encode());

  StatsRequest stats_req;
  stats_req.format = StatsRequest::kFormatPrometheus;
  specimens.emplace_back("StatsRequest", stats_req.encode());

  StatsResponse stats_resp;
  stats_resp.format = 1;
  stats_resp.text = "vp_server_queries_total 12\n";
  specimens.emplace_back("StatsResponse", stats_resp.encode());

  OracleRequest oreq;
  oreq.place = "louvre-denon";
  specimens.emplace_back("OracleRequest", oreq.encode());

  ErrorResponse err;
  err.code = ErrorResponse::kOverloaded;
  err.message = "shedding load";
  specimens.emplace_back("ErrorResponse", err.encode());
  return specimens;
}

/// Decode dispatch by specimen name; throws whatever decode() throws.
void decode_specimen(const std::string& name,
                     std::span<const std::uint8_t> data) {
  if (name == "FingerprintQuery" || name == "FingerprintQueryV3" ||
      name == "FingerprintQueryV4") {
    (void)FingerprintQuery::decode(data);
  } else if (name == "FrameUpload") {
    (void)FrameUpload::decode(data);
  } else if (name == "LocationResponse" || name == "LocationResponseV3") {
    (void)LocationResponse::decode(data);
  } else if (name == "OracleDownload" || name == "OracleDownloadV3") {
    (void)OracleDownload::decode(data);
  } else if (name == "OracleDiff") {
    (void)OracleDiff::decode(data);
  } else if (name == "OracleRequest") {
    (void)OracleRequest::decode(data);
  } else if (name == "StatsRequest") {
    (void)StatsRequest::decode(data);
  } else if (name == "StatsResponse") {
    (void)StatsResponse::decode(data);
  } else {
    (void)ErrorResponse::decode(data);
  }
}

TEST(WireFuzz, EveryPrefixTruncationThrowsDecodeError) {
  for (const auto& [name, encoded] : wire_specimens()) {
    for (std::size_t len = 0; len < encoded.size(); ++len) {
      EXPECT_THROW(decode_specimen(name, std::span(encoded.data(), len)),
                   DecodeError)
          << name << " accepted a " << len << "-byte prefix of "
          << encoded.size() << " bytes";
    }
  }
}

TEST(WireFuzz, TenThousandBitFlipsNeverEscapeDecodeError) {
  const auto specimens = wire_specimens();
  Rng rng(0xF122);
  std::size_t decoded = 0, rejected = 0;
  for (int iter = 0; iter < 10'000; ++iter) {
    const auto& [name, encoded] = specimens[static_cast<std::size_t>(iter) %
                                            specimens.size()];
    Bytes mutated = encoded;
    const std::uint64_t flips = 1 + rng.uniform_u64(8);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const std::uint64_t bit = rng.uniform_u64(mutated.size() * 8);
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    try {
      decode_specimen(name, mutated);
      ++decoded;  // flip landed in a don't-care position: still well-formed
    } catch (const DecodeError&) {
      ++rejected;  // the only acceptable failure mode
    }
    // Anything else (std::bad_alloc, std::length_error, segfault, hang)
    // propagates and fails the test.
  }
  EXPECT_EQ(decoded + rejected, 10'000u);
  EXPECT_GT(rejected, 0u);  // the battery actually hit validation paths
}

TEST(WireFuzz, LyingLengthFieldsThrowWithoutOverAllocating) {
  // Feature count claims 4 billion entries against a ~500-byte payload:
  // the count is validated against the remaining bytes before reserve().
  Bytes q = sample_query(2).encode();
  // Header + empty place string (4) + oracle epoch (4) precede the count.
  const std::size_t count_off = 4 + 2 + 4 + 8 + 2 + 2 + 4 + 4 + 4;
  q[count_off] = q[count_off + 1] = q[count_off + 2] = q[count_off + 3] = 0xFF;
  EXPECT_THROW(FingerprintQuery::decode(q), DecodeError);

  // String length lie at the tail of a LocationResponse (the empty `place`
  // string's length field is the last four bytes on the wire).
  LocationResponse loc;
  loc.place_label = "hall";
  Bytes lb = loc.encode();
  for (std::size_t i = 1; i <= 4; ++i) lb[lb.size() - i] = 0xFF;
  EXPECT_THROW(LocationResponse::decode(lb), DecodeError);

  // Blob length lie in a FrameUpload (payload claims 4 GB).
  FrameUpload frame;
  frame.payload = {1, 2, 3};
  Bytes fb = frame.encode();
  const std::size_t payload_len_off = 4 + 2 + 4 + 8 + 1;
  for (std::size_t i = 0; i < 4; ++i) fb[payload_len_off + i] = 0xFF;
  EXPECT_THROW(FrameUpload::decode(fb), DecodeError);

  // Blob length lie in an OracleDiff.
  const OracleDiff diff = OracleDiff::make(Bytes{1}, Bytes{2}, 1, 2);
  Bytes db = diff.encode();
  const std::size_t xor_len_off = 4 + 2 + 4 + 4;
  for (std::size_t i = 0; i < 4; ++i) db[xor_len_off + i] = 0xFF;
  EXPECT_THROW(OracleDiff::decode(db), DecodeError);
}

TEST(WireFuzz, CorruptZlibStreamsThrowDecodeError) {
  // unpack() feeds attacker bytes to zlib: corruption and truncation must
  // both surface as DecodeError, not crashes inside inflate().
  OracleConfig cfg;
  cfg.capacity = 2000;
  UniquenessOracle oracle(cfg);
  OracleDownload down = OracleDownload::pack(oracle, 1);
  down.compressed[down.compressed.size() / 2] ^= 0xFF;
  EXPECT_THROW(down.unpack(), DecodeError);

  OracleDownload trunc = OracleDownload::pack(oracle, 1);
  trunc.compressed.resize(trunc.compressed.size() / 2);
  EXPECT_THROW(trunc.unpack(), DecodeError);
}

TEST(Link, SerializationTimeMatchesBandwidth) {
  SimulatedLink link({.bandwidth_mbps = 8.0, .rtt_ms = 0.0, .jitter_ms = 0.0});
  const auto rec = link.submit(0.0, 1'000'000);  // 1 MB at 8 Mbps = 1 s
  EXPECT_NEAR(rec.complete_time - rec.start_time, 1.0, 1e-6);
}

TEST(Link, FifoQueueing) {
  SimulatedLink link({.bandwidth_mbps = 8.0, .rtt_ms = 0.0, .jitter_ms = 0.0});
  const auto a = link.submit(0.0, 1'000'000);
  const auto b = link.submit(0.1, 1'000'000);  // submitted while busy
  EXPECT_NEAR(a.complete_time, 1.0, 1e-6);
  EXPECT_NEAR(b.start_time, 1.0, 1e-6);  // waits for a
  EXPECT_NEAR(b.complete_time, 2.0, 1e-6);
}

TEST(Link, LatencyAdds) {
  SimulatedLink link({.bandwidth_mbps = 100.0, .rtt_ms = 40.0, .jitter_ms = 0.0});
  const auto rec = link.submit(0.0, 1000);
  EXPECT_GT(rec.complete_time, 0.02);  // half-RTT floor
}

TEST(Link, BytesDeliveredBy) {
  SimulatedLink link({.bandwidth_mbps = 8.0, .rtt_ms = 0.0, .jitter_ms = 0.0});
  link.submit(0.0, 500'000);
  link.submit(0.0, 500'000);
  EXPECT_EQ(link.bytes_delivered_by(0.4), 0u);
  EXPECT_EQ(link.bytes_delivered_by(0.6), 500'000u);
  EXPECT_EQ(link.bytes_delivered_by(2.0), 1'000'000u);
}

TEST(Link, SustainableFps) {
  // Fig. 2 arithmetic: 2 Mbps / (25 KB frame) = 10 fps.
  EXPECT_NEAR(SimulatedLink::sustainable_fps(2.0, 25'000), 10.0, 0.01);
  EXPECT_THROW(SimulatedLink::sustainable_fps(2.0, 0), InvalidArgument);
}

TEST(Link, ResetClearsState) {
  SimulatedLink link({});
  link.submit(0.0, 1000);
  link.reset();
  EXPECT_TRUE(link.history().empty());
  EXPECT_DOUBLE_EQ(link.busy_until(), 0.0);
}

}  // namespace
}  // namespace vp
