#include <gtest/gtest.h>

#include "imaging/codec.hpp"
#include "net/link.hpp"
#include "net/wire.hpp"
#include "util/rng.hpp"

namespace vp {
namespace {

FingerprintQuery sample_query(std::size_t n_features) {
  FingerprintQuery q;
  q.frame_id = 7;
  q.capture_time = 1.25;
  q.image_width = 920;
  q.image_height = 540;
  q.fov_h = 1.1f;
  q.features.resize(n_features);
  for (std::size_t i = 0; i < n_features; ++i) {
    q.features[i].keypoint.x = static_cast<float>(i);
    q.features[i].descriptor[i % kDescriptorDims] =
        static_cast<std::uint8_t>(i);
  }
  return q;
}

TEST(Wire, FingerprintQueryRoundtrip) {
  const FingerprintQuery q = sample_query(5);
  const Bytes b = q.encode();
  EXPECT_EQ(b.size(), q.wire_size());
  const FingerprintQuery back = FingerprintQuery::decode(b);
  EXPECT_EQ(back.frame_id, 7u);
  EXPECT_DOUBLE_EQ(back.capture_time, 1.25);
  EXPECT_EQ(back.image_width, 920);
  ASSERT_EQ(back.features.size(), 5u);
  EXPECT_EQ(back.features[3].keypoint.x, 3.0f);
  EXPECT_EQ(back.features[4].descriptor[4], 4);
}

TEST(Wire, QuerySizeMatchesPaperScale) {
  // 200 keypoints at 144 B each ~ 29 KB: the paper's "short description
  // (~30KB) of the scene".
  const FingerprintQuery q = sample_query(200);
  EXPECT_GT(q.wire_size(), 28'000u);
  EXPECT_LT(q.wire_size(), 32'000u);
}

TEST(Wire, QueryRejectsCorruptMagic) {
  Bytes b = sample_query(2).encode();
  b[0] ^= 0xFF;
  EXPECT_THROW(FingerprintQuery::decode(b), DecodeError);
}

TEST(Wire, QueryRejectsTruncation) {
  Bytes b = sample_query(3).encode();
  b.resize(b.size() - 10);
  EXPECT_THROW(FingerprintQuery::decode(b), DecodeError);
}

TEST(Wire, FrameUploadRoundtrip) {
  FrameUpload f;
  f.frame_id = 9;
  f.capture_time = 2.5;
  f.codec = 1;
  f.payload = {10, 20, 30, 40};
  const FrameUpload back = FrameUpload::decode(f.encode());
  EXPECT_EQ(back.frame_id, 9u);
  EXPECT_EQ(back.codec, 1);
  EXPECT_EQ(back.payload, (Bytes{10, 20, 30, 40}));
}

TEST(Wire, LocationResponseRoundtrip) {
  LocationResponse r;
  r.frame_id = 3;
  r.found = true;
  r.position = {1.5, -2.5, 0.75};
  r.yaw = 0.3;
  r.residual = 0.01;
  r.matched_keypoints = 42;
  r.place_label = "Louvre, Denon Wing";
  const LocationResponse back = LocationResponse::decode(r.encode());
  EXPECT_TRUE(back.found);
  EXPECT_DOUBLE_EQ(back.position.y, -2.5);
  EXPECT_EQ(back.matched_keypoints, 42u);
  EXPECT_EQ(back.place_label, "Louvre, Denon Wing");
}

TEST(Wire, OracleDownloadRoundtrip) {
  OracleConfig cfg;
  cfg.capacity = 10'000;
  UniquenessOracle oracle(cfg);
  Rng rng(1);
  Descriptor d;
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.uniform_u64(60));
  for (int i = 0; i < 3; ++i) oracle.insert(d);

  const OracleDownload down = OracleDownload::pack(oracle, 5);
  const Bytes wire = down.encode();
  const OracleDownload back = OracleDownload::decode(wire);
  EXPECT_EQ(back.version, 5u);
  const UniquenessOracle restored = back.unpack();
  EXPECT_EQ(restored.count(d), oracle.count(d));
}

TEST(Wire, OracleDownloadCompresses) {
  OracleConfig cfg;
  cfg.capacity = 50'000;
  UniquenessOracle oracle(cfg);  // nearly empty -> very compressible
  const OracleDownload down = OracleDownload::pack(oracle, 1);
  EXPECT_LT(down.compressed.size(), oracle.serialize().size() / 20);
}

TEST(Wire, OracleDiffReconstructs) {
  OracleConfig cfg;
  cfg.capacity = 10'000;
  UniquenessOracle oracle(cfg);
  Rng rng(2);
  Descriptor d1, d2;
  for (auto& v : d1) v = static_cast<std::uint8_t>(rng.uniform_u64(60));
  for (auto& v : d2) v = static_cast<std::uint8_t>(rng.uniform_u64(60));

  oracle.insert(d1);
  const Bytes v1 = oracle.serialize();
  oracle.insert(d2);
  const Bytes v2 = oracle.serialize();

  const OracleDiff diff = OracleDiff::make(v1, v2, 1, 2);
  const Bytes rebuilt = diff.apply(v1);
  EXPECT_EQ(rebuilt, v2);
  // Diff should be much smaller than the full new snapshot compressed.
  EXPECT_LT(diff.compressed_xor.size(), zlib_compress(v2, 9).size() + 128);
}

TEST(Wire, OracleDiffEncodeRoundtrip) {
  const Bytes old_blob{1, 2, 3, 4};
  const Bytes new_blob{1, 9, 3, 4, 5};
  const OracleDiff d = OracleDiff::make(old_blob, new_blob, 3, 4);
  const OracleDiff back = OracleDiff::decode(d.encode());
  EXPECT_EQ(back.from_version, 3u);
  EXPECT_EQ(back.to_version, 4u);
  EXPECT_EQ(back.apply(old_blob), new_blob);
}

TEST(Link, SerializationTimeMatchesBandwidth) {
  SimulatedLink link({.bandwidth_mbps = 8.0, .rtt_ms = 0.0, .jitter_ms = 0.0});
  const auto rec = link.submit(0.0, 1'000'000);  // 1 MB at 8 Mbps = 1 s
  EXPECT_NEAR(rec.complete_time - rec.start_time, 1.0, 1e-6);
}

TEST(Link, FifoQueueing) {
  SimulatedLink link({.bandwidth_mbps = 8.0, .rtt_ms = 0.0, .jitter_ms = 0.0});
  const auto a = link.submit(0.0, 1'000'000);
  const auto b = link.submit(0.1, 1'000'000);  // submitted while busy
  EXPECT_NEAR(a.complete_time, 1.0, 1e-6);
  EXPECT_NEAR(b.start_time, 1.0, 1e-6);  // waits for a
  EXPECT_NEAR(b.complete_time, 2.0, 1e-6);
}

TEST(Link, LatencyAdds) {
  SimulatedLink link({.bandwidth_mbps = 100.0, .rtt_ms = 40.0, .jitter_ms = 0.0});
  const auto rec = link.submit(0.0, 1000);
  EXPECT_GT(rec.complete_time, 0.02);  // half-RTT floor
}

TEST(Link, BytesDeliveredBy) {
  SimulatedLink link({.bandwidth_mbps = 8.0, .rtt_ms = 0.0, .jitter_ms = 0.0});
  link.submit(0.0, 500'000);
  link.submit(0.0, 500'000);
  EXPECT_EQ(link.bytes_delivered_by(0.4), 0u);
  EXPECT_EQ(link.bytes_delivered_by(0.6), 500'000u);
  EXPECT_EQ(link.bytes_delivered_by(2.0), 1'000'000u);
}

TEST(Link, SustainableFps) {
  // Fig. 2 arithmetic: 2 Mbps / (25 KB frame) = 10 fps.
  EXPECT_NEAR(SimulatedLink::sustainable_fps(2.0, 25'000), 10.0, 0.01);
  EXPECT_THROW(SimulatedLink::sustainable_fps(2.0, 0), InvalidArgument);
}

TEST(Link, ResetClearsState) {
  SimulatedLink link({});
  link.submit(0.0, 1000);
  link.reset();
  EXPECT_TRUE(link.history().empty());
  EXPECT_DOUBLE_EQ(link.busy_until(), 0.0);
}

}  // namespace
}  // namespace vp
