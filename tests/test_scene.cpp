#include <gtest/gtest.h>

#include <algorithm>

#include "scene/environments.hpp"
#include "scene/render.hpp"
#include "scene/texture.hpp"
#include "scene/world.hpp"

namespace vp {
namespace {

TEST(Texture, DimensionsAndRange) {
  Rng rng(1);
  for (const ImageF& tex :
       {noise_texture(64, 48, 3, 20, 230, rng), painting_texture(64, 48, rng),
        checkerboard_texture(64, 48, 8, 120, 180, rng),
        ceiling_texture(64, 48, 12, rng), wood_texture(64, 48, rng),
        door_texture(64, 96, 42, rng), nameplate_texture(64, 24, rng),
        shelf_texture(64, 48, 1, rng), wall_texture(64, 48, 200, rng)}) {
    EXPECT_EQ(tex.width(), 64);
    for (const float p : tex.pixels()) {
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 255.0f);
    }
  }
}

TEST(Texture, PaintingsAreDistinct) {
  Rng rng(2);
  const ImageF a = painting_texture(64, 64, rng);
  const ImageF b = painting_texture(64, 64, rng);
  double diff = 0;
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    diff += std::abs(a.pixels()[i] - b.pixels()[i]);
  }
  EXPECT_GT(diff / a.pixels().size(), 10.0);
}

TEST(Texture, DoorKnobsIdenticalAcrossDoors) {
  Rng rng1(3), rng2(4);  // different wood grain
  const ImageF a = door_texture(110, 240, 42, rng1);
  const ImageF b = door_texture(110, 240, 42, rng2);
  // The knob area (around x=5w/6, y=h/2) should be pixel-identical.
  const int kx = 110 * 5 / 6, ky = 120, kr = 110 / 16;
  for (int dy = -kr + 2; dy <= kr - 2; ++dy) {
    for (int dx = -kr + 2; dx <= kr - 2; ++dx) {
      if (dx * dx + dy * dy <= (kr - 2) * (kr - 2)) {
        EXPECT_EQ(a(kx + dx, ky + dy), b(kx + dx, ky + dy));
      }
    }
  }
}

TEST(Texture, CheckerboardAlternates) {
  Rng rng(5);
  const ImageF t = checkerboard_texture(64, 64, 16, 100, 200, rng);
  // Centers of adjacent tiles differ by ~100 gray levels.
  EXPECT_GT(std::abs(t(8, 8) - t(24, 8)), 60.0f);
}

TEST(World, AddAndBounds) {
  World w;
  Rng rng(6);
  w.add_surface({0, 0, 0}, {10, 0, 0}, {0, 0, 3},
                wall_texture(32, 16, 200, rng));
  w.add_surface({0, 5, 0}, {10, 0, 0}, {0, 0, 3},
                wall_texture(32, 16, 200, rng), 2, "scene2");
  Vec3 lo, hi;
  w.bounds(lo, hi);
  EXPECT_DOUBLE_EQ(lo.x, 0);
  EXPECT_DOUBLE_EQ(hi.x, 10);
  EXPECT_DOUBLE_EQ(hi.y, 5);
  EXPECT_DOUBLE_EQ(hi.z, 3);
  EXPECT_EQ(w.scene_count(), 3);  // ids 0..2 possible
}

TEST(World, RejectsDegenerateQuad) {
  World w;
  Rng rng(7);
  const auto tex = w.add_texture(wall_texture(8, 8, 100, rng));
  TexturedQuad q;
  q.edge_u = {1, 0, 0};
  q.edge_v = {2, 0, 0};  // parallel edges -> zero area
  q.texture = tex;
  EXPECT_THROW(w.add_quad(q), InvalidArgument);
}

TEST(Raycast, HitsFrontQuad) {
  World w;
  Rng rng(8);
  w.add_surface({-1, 2, -1}, {2, 0, 0}, {0, 0, 2},
                wall_texture(16, 16, 150, rng));
  w.add_surface({-1, 5, -1}, {2, 0, 0}, {0, 0, 2},
                wall_texture(16, 16, 150, rng));
  const auto hit = raycast(w, {0, 0, 0}, {0, 1, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->t, 2.0, 1e-9);
  EXPECT_EQ(hit->quad, 0u);  // nearest, not the one behind
  EXPECT_NEAR(hit->u, 0.5, 1e-9);
  EXPECT_NEAR(hit->v, 0.5, 1e-9);
}

TEST(Raycast, MissesOutsideQuad) {
  World w;
  Rng rng(9);
  w.add_surface({-1, 2, -1}, {2, 0, 0}, {0, 0, 2},
                wall_texture(16, 16, 150, rng));
  EXPECT_FALSE(raycast(w, {10, 0, 0}, {0, 1, 0}).has_value());
  EXPECT_FALSE(raycast(w, {0, 0, 0}, {0, -1, 0}).has_value());  // behind
}

TEST(LookAt, TargetProjectsToImageCenter) {
  CameraIntrinsics intr{640, 480, 1.2};
  const Vec3 pos{3, 7, 1.5};
  const Vec3 target{10, 2, 1.0};
  const Camera cam = look_at(intr, pos, target);
  const auto px = cam.project_world(target);
  ASSERT_TRUE(px.has_value());
  EXPECT_NEAR(px->x, 320, 1.0);
  EXPECT_NEAR(px->y, 240, 1.0);
}

TEST(LookAt, UprightImage) {
  // A point above the target should project above the center (smaller y).
  CameraIntrinsics intr{640, 480, 1.2};
  const Camera cam = look_at(intr, {0, 0, 1.5}, {5, 0, 1.5});
  const auto above = cam.project_world({5, 0, 2.5});
  ASSERT_TRUE(above.has_value());
  EXPECT_LT(above->y, 240);
}

TEST(Render, ProducesImageAndDepth) {
  Rng rng(10);
  GalleryConfig gc;
  gc.num_scenes = 4;
  gc.hall_length = 20;
  const World w = build_gallery(gc, rng);
  const auto sq = scene_quads(w);
  CameraIntrinsics intr{160, 120, 1.2};
  const Camera cam = view_of_quad(w, sq[0], intr, 0, 2.0, rng);
  RenderOptions ro;
  ro.want_depth = true;
  const auto out = render(w, cam, ro, rng);
  EXPECT_EQ(out.image.width(), 160);
  EXPECT_EQ(out.depth.width(), 40);  // downscale 4
  // Looking at a wall from 2 m: central depth should be around 2 m.
  EXPECT_NEAR(out.depth(20, 15), 2.0, 0.8);
  // The image should have nontrivial content.
  double lo = 255, hi = 0;
  for (float p : out.image.pixels()) {
    lo = std::min<double>(lo, p);
    hi = std::max<double>(hi, p);
  }
  EXPECT_GT(hi - lo, 40.0);
}

TEST(Render, DepthMatchesRaycast) {
  Rng rng(11);
  World w;
  w.add_surface({-5, 4, -5}, {10, 0, 0}, {0, 0, 10},
                wall_texture(32, 32, 150, rng));
  CameraIntrinsics intr{64, 48, 1.0};
  const Camera cam = look_at(intr, {0, 0, 0}, {0, 4, 0});
  RenderOptions ro;
  ro.want_depth = true;
  ro.noise_stddev = 0;
  const auto out = render(w, cam, ro, rng);
  const Vec2 px{32.5, 24.5};
  const auto wp = world_point_at_pixel(w, cam, px);
  ASSERT_TRUE(wp.has_value());
  EXPECT_NEAR(wp->y, 4.0, 1e-6);
}

TEST(Render, VisibleScenesDetected) {
  Rng rng(12);
  GalleryConfig gc;
  gc.num_scenes = 6;
  gc.hall_length = 30;
  const World w = build_gallery(gc, rng);
  const auto sq = scene_quads(w);
  CameraIntrinsics intr{320, 240, 1.2};
  for (int s : {0, 3, 5}) {
    const Camera cam =
        view_of_quad(w, sq[static_cast<std::size_t>(s)], intr, 5.0, 1.8, rng);
    const auto vis = visible_scene_ids(w, cam);
    EXPECT_TRUE(std::find(vis.begin(), vis.end(), s) != vis.end())
        << "scene " << s << " not visible from its own viewpoint";
  }
}

TEST(Environments, GalleryHasRequestedScenes) {
  Rng rng(13);
  GalleryConfig gc;
  gc.num_scenes = 10;
  const World w = build_gallery(gc, rng);
  EXPECT_EQ(w.scene_count(), 10);
  const auto sq = scene_quads(w);
  ASSERT_EQ(sq.size(), 10u);
  for (auto qi : sq) EXPECT_LT(qi, w.quads().size());
}

TEST(Environments, AllPresetsBuild) {
  Rng rng(14);
  RoomConfig rc;
  rc.width = 30;
  rc.depth = 12;
  rc.num_scenes = 5;
  for (const World& w :
       {build_office(rc, rng), build_cafeteria(rc, rng), build_grocery(rc, rng)}) {
    EXPECT_GT(w.quads().size(), 6u);
    EXPECT_GE(w.scene_count(), 1);
    Vec3 lo, hi;
    w.bounds(lo, hi);
    EXPECT_GT(hi.x - lo.x, 10.0);
  }
}

}  // namespace
}  // namespace vp
