// Admission-control and load-harness battery: the AdmissionGate's
// accounting invariants under seeded concurrent bursts (the properties
// DESIGN.md §13 promises: inflight never exceeds the cap, every offer is
// admitted or shed exactly once, every shed request still gets exactly one
// structured reply), the serve()-level and VisualPrintServer-level shed
// paths, and the determinism contract of the bench_load smoke ledger.
// TSan-clean by construction (scripts/tier1.sh runs this suite under
// -DVP_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/server.hpp"
#include "net/admission.hpp"
#include "net/loadgen.hpp"
#include "net/retry.hpp"
#include "net/tcp.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

TEST(Admission, GateAdmitsUpToCapAndCountsEveryOutcome) {
  AdmissionGate gate(2);
  EXPECT_EQ(gate.max_inflight(), 2u);
  EXPECT_TRUE(gate.try_enter());
  EXPECT_TRUE(gate.try_enter());
  EXPECT_EQ(gate.inflight(), 2u);
  EXPECT_FALSE(gate.try_enter());  // at cap: shed
  EXPECT_FALSE(gate.try_enter());
  gate.exit();
  EXPECT_TRUE(gate.try_enter());  // slot freed: admitted again
  gate.exit();
  gate.exit();
  EXPECT_EQ(gate.inflight(), 0u);
  EXPECT_EQ(gate.admitted(), 3u);
  EXPECT_EQ(gate.shed(), 2u);
  EXPECT_EQ(gate.peak_inflight(), 2u);
  EXPECT_DOUBLE_EQ(gate.shed_rate(), 2.0 / 5.0);
}

TEST(Admission, ZeroCapAdmitsEverythingAndNullGateTicketsAdmit) {
  AdmissionGate unlimited(0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(unlimited.try_enter());
  EXPECT_EQ(unlimited.admitted(), 100u);
  EXPECT_EQ(unlimited.shed(), 0u);
  for (int i = 0; i < 100; ++i) unlimited.exit();

  const AdmissionTicket ticket(nullptr);  // ungated server path
  EXPECT_TRUE(ticket.admitted());
}

// The §13 property test: seeded concurrent bursts against one gate. Every
// try_enter must resolve to exactly one of admitted/shed, the inflight
// count may never exceed the cap at any instant (checked via both the
// gate's own peak tracker and each thread's observations), and the gate
// must drain to zero.
TEST(Admission, InvariantsHoldUnderSeededConcurrentBursts) {
  constexpr std::size_t kCap = 3;
  constexpr int kThreads = 8;
  constexpr int kRounds = 400;
  AdmissionGate gate(kCap);

  std::atomic<std::uint64_t> offered{0};
  std::atomic<std::uint64_t> observed_admitted{0};
  std::atomic<std::uint64_t> observed_shed{0};
  std::vector<std::size_t> max_seen_inflight(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(9000 + static_cast<std::uint64_t>(t));
      for (int r = 0; r < kRounds; ++r) {
        // A seeded burst of 1..4 simultaneous offers. Bursts can exceed the
        // cap on their own (4 > 3), so sheds occur under any scheduling —
        // including a single-core box where threads barely interleave.
        const std::uint64_t burst = 1 + rng.uniform_u64(4);
        std::size_t held = 0;
        for (std::uint64_t b = 0; b < burst; ++b) {
          offered.fetch_add(1, std::memory_order_relaxed);
          if (gate.try_enter()) {
            ++held;
            observed_admitted.fetch_add(1, std::memory_order_relaxed);
          } else {
            observed_shed.fetch_add(1, std::memory_order_relaxed);
          }
          const std::size_t seen = gate.inflight();
          max_seen_inflight[static_cast<std::size_t>(t)] =
              std::max(max_seen_inflight[static_cast<std::size_t>(t)], seen);
        }
        // Hold the burst across a reschedule point so other threads offer
        // against a partially full gate.
        std::this_thread::yield();
        for (std::size_t h = 0; h < held; ++h) gate.exit();
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GE(offered.load(), static_cast<std::uint64_t>(kThreads * kRounds));
  // Conservation: every offer resolved exactly once, and the gate's own
  // ledger agrees with what the callers observed.
  EXPECT_EQ(gate.admitted() + gate.shed(), offered.load());
  EXPECT_EQ(gate.admitted(), observed_admitted.load());
  EXPECT_EQ(gate.shed(), observed_shed.load());
  // The cap is a hard bound at every instant, not on average.
  EXPECT_LE(gate.peak_inflight(), kCap);
  for (const std::size_t seen : max_seen_inflight) EXPECT_LE(seen, kCap);
  // Fully drained: no ticket leaked a slot.
  EXPECT_EQ(gate.inflight(), 0u);
  // With 8 threads hammering a cap of 3, both outcomes must occur.
  EXPECT_GT(gate.admitted(), 0u);
  EXPECT_GT(gate.shed(), 0u);
}

TEST(Admission, CapIsAdjustableAtRuntime) {
  AdmissionGate gate(1);
  EXPECT_TRUE(gate.try_enter());
  EXPECT_FALSE(gate.try_enter());
  gate.set_max_inflight(2);  // raise live
  EXPECT_TRUE(gate.try_enter());
  gate.set_max_inflight(1);  // shrink below current inflight
  EXPECT_FALSE(gate.try_enter());  // sheds until it drains below the cap
  gate.exit();
  gate.exit();
  EXPECT_EQ(gate.inflight(), 0u);
  gate.set_max_inflight(0);
  EXPECT_TRUE(gate.try_enter());  // unlimited again
  gate.exit();
}

// serve()-level shedding: a gate on ServeOptions bounds concurrently
// executing handlers across connections; requests beyond the cap are
// answered with a structured kOverloaded on their own connection — exactly
// one reply each, never a dropped or torn frame.
TEST(Admission, ServeShedsBeyondGateCapWithStructuredReplies) {
  AdmissionGate gate(1);
  std::mutex m;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;

  ThreadPool pool(4);
  TcpListener listener(0);
  ServeOptions options;
  options.pool = &pool;
  options.max_connections = 8;
  options.io_timeout_ms = 5000;
  options.poll_interval_ms = 5;
  options.admission = &gate;
  ServeStats stats;
  std::atomic<bool> run{true};
  std::thread serve_thread([&] {
    listener.serve(
        [&](std::span<const std::uint8_t> req) {
          {
            std::unique_lock lock(m);
            entered = true;
            cv.notify_all();
            cv.wait(lock, [&] { return release; });
          }
          return Bytes(req.begin(), req.end());
        },
        [&] { return run.load(); }, options, &stats);
  });

  // Client A occupies the single admitted slot inside the handler.
  Bytes slow_reply;
  std::thread slow_client([&] {
    RetryPolicy p;
    p.max_attempts = 1;
    p.io_timeout_ms = 5000;
    p.connect_timeout_ms = 2000;
    RetryingClient net("127.0.0.1", listener.port(), p);
    slow_reply = net.request(Bytes{0xA5});
  });
  {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return entered; });
  }

  // Clients B and C are shed: one structured kOverloaded reply each, on a
  // live connection, without retry (their policy refuses overload retries).
  for (int i = 0; i < 2; ++i) {
    RetryPolicy p;
    p.max_attempts = 3;
    p.retry_overloaded = false;
    p.io_timeout_ms = 2000;
    p.connect_timeout_ms = 2000;
    RetryingClient net("127.0.0.1", listener.port(), p);
    try {
      net.request(Bytes{0x5A});
      FAIL() << "expected kOverloaded";
    } catch (const RemoteError& e) {
      EXPECT_EQ(e.code(), ErrorResponse::kOverloaded);
    }
    EXPECT_EQ(net.stats().attempts, 1u);  // shed is terminal, not retried
    EXPECT_EQ(net.stats().overloaded, 1u);
  }

  {
    std::lock_guard lock(m);
    release = true;
  }
  cv.notify_all();
  slow_client.join();
  EXPECT_EQ(slow_reply, Bytes{0xA5});

  run.store(false);
  serve_thread.join();
  EXPECT_EQ(gate.admitted(), 1u);
  EXPECT_EQ(gate.shed(), 2u);
  EXPECT_EQ(stats.shed.load(), 2u);
  EXPECT_EQ(stats.responses.load(), 3u);  // every request got one reply
}

/// A few co-located synthetic keypoints: enough for retrieval to match
/// (queries reuse the stored descriptors) and for the cluster filter to
/// accept, with a tiny solver budget so served queries stay cheap.
std::vector<KeypointMapping> soak_mappings(Rng& rng, std::size_t n) {
  std::vector<KeypointMapping> ms;
  ms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Feature f;
    f.keypoint = {8.0f + static_cast<float>(i % 13), 6.0f, 2.0f, 0.0f, 1.0f,
                  0};
    for (auto& v : f.descriptor) {
      v = static_cast<std::uint8_t>(rng.uniform_u64(60));
    }
    ms.push_back({f,
                  {10.0 + rng.uniform(-0.4, 0.4), 10.0 + rng.uniform(-0.4, 0.4),
                   1.0 + rng.uniform(-0.2, 0.2)},
                  static_cast<std::uint32_t>(i)});
  }
  return ms;
}

ServerConfig soak_config() {
  ServerConfig cfg;
  cfg.localize.search_lo = {5, 5, -2};
  cfg.localize.search_hi = {15, 15, 4};
  cfg.localize.refine_rounds = 0;
  cfg.localize.de.population = 12;
  cfg.localize.de.max_generations = 6;
  cfg.localize.de.time_budget_sec = 0.01;
  return cfg;
}

// The VisualPrintServer sheds *queries only*: with the gate held at
// capacity a 'Q' request returns a structured kOverloaded, while stats
// scrapes and oracle downloads are still served — an overloaded server
// must stay observable.
TEST(Admission, ServerShedsQueriesButServesStatsAndOracle) {
  ServerConfig cfg = soak_config();
  VisualPrintServer server(cfg);
  Rng rng(41);
  const auto mappings = soak_mappings(rng, 40);
  server.ingest_wardrive(mappings);
  server.set_max_inflight(1);

  FingerprintQuery q;
  q.frame_id = 5;
  for (std::size_t i = 0; i < 20; ++i) q.features.push_back(mappings[i].feature);
  ByteWriter w;
  w.u8(kQueryRequest);
  w.raw(q.encode());
  const Bytes query_frame = w.take();

  ASSERT_TRUE(server.admission().try_enter());  // hold the only slot

  const Bytes shed_reply = server.handle_request(query_frame, 7);
  ASSERT_TRUE(is_error_frame(shed_reply));
  const ErrorResponse err = ErrorResponse::decode(shed_reply);
  EXPECT_EQ(err.code, ErrorResponse::kOverloaded);

  // Observability survives overload: stats and oracle bypass the gate.
  ByteWriter sw;
  sw.u8(kStatsRequest);
  sw.raw(StatsRequest{}.encode());
  const Bytes stats_reply = server.handle_request(sw.take(), 7);
  EXPECT_FALSE(is_error_frame(stats_reply));
  const Bytes oracle_reply = server.handle_request(Bytes{kOracleRequest}, 7);
  EXPECT_FALSE(is_error_frame(oracle_reply));

  server.admission().exit();  // drain

  const Bytes served_reply = server.handle_request(query_frame, 7);
  ASSERT_FALSE(is_error_frame(served_reply));
  const LocationResponse resp = LocationResponse::decode(served_reply);
  EXPECT_TRUE(resp.found);

  EXPECT_EQ(server.admission().shed(), 1u);
  // try_enter above + the served query both count as admissions.
  EXPECT_EQ(server.admission().admitted(), 2u);
  EXPECT_EQ(server.admission().inflight(), 0u);
}

// Overload-recovery soak over real sockets: saturate a pooled server past
// its admission cap, assert every excess request is shed with a structured
// kOverloaded (never a timeout or torn frame), then drop the load and
// assert goodput and fix accuracy return to the unloaded baseline.
TEST(Admission, OverloadSoakShedsCleanlyAndRecovers) {
  ServerConfig cfg = soak_config();
  VisualPrintServer server(cfg);
  Rng rng(42);
  const auto mappings = soak_mappings(rng, 60);
  server.ingest_wardrive(mappings);
  server.set_max_inflight(2);

  FingerprintQuery q;
  q.frame_id = 9;
  for (std::size_t i = 0; i < 20; ++i) q.features.push_back(mappings[i].feature);
  ByteWriter w;
  w.u8(kQueryRequest);
  w.raw(q.encode());

  ThreadPool pool(8);
  TcpListener listener(0);
  ServeOptions options;
  options.pool = &pool;
  options.max_connections = 16;
  options.io_timeout_ms = 10'000;
  options.poll_interval_ms = 5;
  std::atomic<bool> run{true};
  std::thread serve_thread([&] {
    listener.serve(
        [&](std::span<const std::uint8_t> req) {
          return server.handle_request(req, 7);
        },
        [&] { return run.load(); }, options);
  });

  load::Workload base;
  base.port = listener.port();
  base.payloads = {w.take()};
  base.seed = 77;
  base.client.policy.io_timeout_ms = 10'000;
  base.client.policy.connect_timeout_ms = 5000;
  base.client.policy.retry_overloaded = false;  // count sheds, don't hide them

  // Baseline: one client never reaches the cap of 2 — everything served.
  load::Workload unloaded = base;
  unloaded.clients = 1;
  unloaded.client.requests = 12;
  const load::LoadReport before = load::run_closed_loop(unloaded);
  ASSERT_EQ(before.served(), before.offered());
  ASSERT_EQ(before.shed(), 0u);
  ASSERT_EQ(before.errors(), 0u);
  const double baseline_accuracy =
      static_cast<double>(before.ok()) / static_cast<double>(before.served());
  EXPECT_DOUBLE_EQ(baseline_accuracy, 1.0);  // co-located map: every fix lands

  // Storm: 8 closed-loop clients against cap 2. Excess must be shed with
  // structured kOverloaded — zero transport errors means no deadline
  // blowouts and no torn frames, which is the whole point of shedding.
  load::Workload storm = base;
  storm.clients = 8;
  storm.client.requests = 15;
  storm.client.shed_pause_ms = 2.0;
  const load::LoadReport during = load::run_closed_loop(storm);
  EXPECT_EQ(during.errors(), 0u);
  EXPECT_GT(during.shed(), 0u);
  EXPECT_EQ(during.served() + during.shed(), during.offered());
  EXPECT_EQ(during.overloaded_replies(), during.shed());

  // Recovery: load gone, the very next unloaded phase matches baseline —
  // all served, no sheds, identical fix accuracy.
  load::Workload after_load = base;
  after_load.clients = 1;
  after_load.client.requests = 12;
  const load::LoadReport after = load::run_closed_loop(after_load);
  EXPECT_EQ(after.served(), after.offered());
  EXPECT_EQ(after.shed(), 0u);
  EXPECT_EQ(after.errors(), 0u);
  EXPECT_EQ(after.retries(), 0u);
  const double recovered_accuracy =
      static_cast<double>(after.ok()) / static_cast<double>(after.served());
  EXPECT_DOUBLE_EQ(recovered_accuracy, baseline_accuracy);

  run.store(false);
  serve_thread.join();
}

TEST(LoadGen, PayloadPickSequenceIsAPureFunctionOfItsArguments) {
  const auto a = load::payload_pick_sequence(11, 0, 32, 6);
  const auto b = load::payload_pick_sequence(11, 0, 32, 6);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 32u);
  for (const std::uint32_t pick : a) EXPECT_LT(pick, 6u);
  // Different clients and different seeds draw different streams.
  EXPECT_NE(a, load::payload_pick_sequence(11, 1, 32, 6));
  EXPECT_NE(a, load::payload_pick_sequence(12, 0, 32, 6));
}

TEST(LoadGen, DeterministicSmokeLedgerIsIdenticalAcrossRuns) {
  const load::DeterministicLedger first = load::deterministic_smoke(5);
  const load::DeterministicLedger second = load::deterministic_smoke(5);
  EXPECT_EQ(first.crc(), second.crc());
  EXPECT_EQ(first.to_json(), second.to_json());
  // The ledger is internally coherent: every gate offer resolved once,
  // and the scripted retry phase recorded one backoff per resend.
  EXPECT_EQ(first.offered, first.admitted + first.shed);
  EXPECT_GT(first.shed, 0u);
  EXPECT_EQ(first.retries, first.backoff_ms.size());
  EXPECT_GT(first.retries, 0u);

  const load::DeterministicLedger other = load::deterministic_smoke(6);
  EXPECT_NE(first.crc(), other.crc());
  EXPECT_NE(first.request_sequence, other.request_sequence);
}

}  // namespace
}  // namespace vp
