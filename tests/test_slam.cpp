#include <gtest/gtest.h>

#include "scene/environments.hpp"
#include "slam/map_merge.hpp"
#include "slam/mapping.hpp"
#include "slam/wardrive.hpp"

namespace vp {
namespace {

World small_world(Rng& rng) {
  GalleryConfig gc;
  gc.num_scenes = 4;
  gc.hall_length = 14;
  gc.hall_width = 6;
  return build_gallery(gc, rng);
}

WardriveConfig small_config() {
  WardriveConfig cfg;
  cfg.intrinsics = {160, 120, 1.15192};
  cfg.stop_spacing = 3.0;
  cfg.lane_spacing = 3.0;
  cfg.views_per_stop = 1;
  return cfg;
}

TEST(Wardrive, ProducesSnapshotsWithDepth) {
  Rng rng(1);
  const World w = small_world(rng);
  const auto snaps = wardrive(w, small_config(), rng);
  ASSERT_GT(snaps.size(), 3u);
  for (const auto& s : snaps) {
    EXPECT_EQ(s.image.width(), 160);
    EXPECT_EQ(s.depth.width(), 40);
    // Depth should have real returns (walls within range).
    int hits = 0;
    for (float d : s.depth.pixels()) hits += d > 0;
    EXPECT_GT(hits, s.depth.pixels().size() / 4);
  }
}

TEST(Wardrive, DriftGrowsAlongWalk) {
  Rng rng(2);
  const World w = small_world(rng);
  WardriveConfig cfg = small_config();
  cfg.drift.pos_per_meter = 0.05;  // exaggerate for the test
  const auto snaps = wardrive(w, cfg, rng);
  ASSERT_GT(snaps.size(), 6u);
  const double err_first =
      (snaps[1].reported_pose.translation - snaps[1].true_pose.translation)
          .norm();
  double err_last = 0;
  for (std::size_t i = snaps.size() - 3; i < snaps.size(); ++i) {
    err_last = std::max(
        err_last, (snaps[i].reported_pose.translation -
                   snaps[i].true_pose.translation)
                      .norm());
  }
  EXPECT_GT(err_last, err_first);
}

TEST(Wardrive, ZeroDriftReportsTruth) {
  Rng rng(3);
  const World w = small_world(rng);
  WardriveConfig cfg = small_config();
  cfg.drift = {0, 0, 0, 0};
  const auto snaps = wardrive(w, cfg, rng);
  for (const auto& s : snaps) {
    EXPECT_LT(
        (s.reported_pose.translation - s.true_pose.translation).norm(), 1e-9);
  }
}

TEST(DepthToWorld, PointsLieOnSurfaces) {
  Rng rng(4);
  const World w = small_world(rng);
  WardriveConfig cfg = small_config();
  cfg.drift = {0, 0, 0, 0};
  cfg.render.noise_stddev = 0;
  const auto snaps = wardrive(w, cfg, rng);
  ASSERT_FALSE(snaps.empty());
  const auto& s = snaps[0];
  int checked = 0;
  for (int y = 0; y < s.depth.height(); y += 7) {
    for (int x = 0; x < s.depth.width(); x += 7) {
      const auto p = depth_to_world(s, s.true_pose, x, y);
      if (!p) continue;
      // Re-cast a ray from the camera through the point: it should hit a
      // surface at the same distance.
      const Vec3 dir = (*p - s.true_pose.translation).normalized();
      const auto hit = raycast(w, s.true_pose.translation, dir);
      ASSERT_TRUE(hit.has_value());
      EXPECT_NEAR(hit->t, (*p - s.true_pose.translation).norm(), 0.25);
      ++checked;
    }
  }
  EXPECT_GT(checked, 5);
}

TEST(MapMerge, DisabledPassesThroughReportedPoses) {
  Rng rng(5);
  const World w = small_world(rng);
  const auto snaps = wardrive(w, small_config(), rng);
  MapMergeConfig cfg;
  cfg.enabled = false;
  const auto merged = merge_snapshots(snaps, cfg);
  ASSERT_EQ(merged.corrected_poses.size(), snaps.size());
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_LT((merged.corrected_poses[i].translation -
               snaps[i].reported_pose.translation)
                  .norm(),
              1e-12);
  }
}

TEST(MapMerge, IcpReducesPoseError) {
  Rng rng(6);
  const World w = small_world(rng);
  WardriveConfig cfg = small_config();
  cfg.drift.pos_per_meter = 0.04;
  cfg.drift.yaw_per_meter = 0.004;
  const auto snaps = wardrive(w, cfg, rng);
  ASSERT_GT(snaps.size(), 4u);

  MapMergeConfig off;
  off.enabled = false;
  MapMergeConfig on;
  on.cloud_stride = 2;
  const auto raw = merge_snapshots(snaps, off);
  const auto corrected = merge_snapshots(snaps, on);
  const double err_raw = mean_pose_error(snaps, raw.corrected_poses);
  const double err_icp = mean_pose_error(snaps, corrected.corrected_poses);
  EXPECT_LT(err_icp, err_raw);
  EXPECT_GT(corrected.snapshots_corrected, snaps.size() / 2);
}

TEST(Mapping, ExtractsKeypointPositionsNearSurfaces) {
  Rng rng(7);
  const World w = small_world(rng);
  WardriveConfig cfg = small_config();
  cfg.intrinsics = {320, 240, 1.15192};
  cfg.drift = {0, 0, 0, 0};
  cfg.render.noise_stddev = 1.0;
  const auto snaps = wardrive(w, cfg, rng);
  std::vector<Pose> poses;
  for (const auto& s : snaps) poses.push_back(s.true_pose);
  const auto mappings = extract_mappings(snaps, poses);
  ASSERT_GT(mappings.size(), 20u);
  int on_surface = 0;
  for (const auto& m : mappings) {
    const Vec3 from = poses[m.snapshot].translation;
    const Vec3 dir = (m.world_position - from).normalized();
    const auto hit = raycast(w, from, dir);
    if (hit &&
        std::abs(hit->t - (m.world_position - from).norm()) < 0.4) {
      ++on_surface;
    }
  }
  EXPECT_GT(static_cast<double>(on_surface) / mappings.size(), 0.75);
}

TEST(Mapping, MaxDepthFiltersFarPoints) {
  Rng rng(8);
  const World w = small_world(rng);
  WardriveConfig cfg = small_config();
  const auto snaps = wardrive(w, cfg, rng);
  std::vector<Pose> poses;
  for (const auto& s : snaps) poses.push_back(s.reported_pose);
  MappingConfig mc;
  mc.max_depth = 0.5;  // everything is farther than this
  EXPECT_TRUE(extract_mappings(snaps, poses, mc).empty());
}

}  // namespace
}  // namespace vp
