#include <gtest/gtest.h>

#include "energy/power.hpp"

namespace vp {
namespace {

TEST(Power, IdleOnlyBaseline) {
  PowerModel model;
  ActivitySlot idle;
  idle.display_on = false;
  idle.camera_on = false;
  const double w = model.slot_power(idle);
  EXPECT_NEAR(w, model.coefficients().idle_w + model.coefficients().radio_idle_w,
              1e-12);
}

TEST(Power, ComponentsAddUp) {
  PowerModel model;
  const auto& c = model.coefficients();
  ActivitySlot full;
  full.compute_fraction = 1.0;
  full.tx_fraction = 1.0;
  EXPECT_NEAR(model.slot_power(full),
              c.idle_w + c.display_w + c.camera_w + c.cpu_active_w + c.radio_tx_w,
              1e-12);
}

TEST(Power, FractionsScaleLinearly) {
  PowerModel model;
  ActivitySlot half;
  half.compute_fraction = 0.5;
  ActivitySlot none;
  const double delta = model.slot_power(half) - model.slot_power(none);
  EXPECT_NEAR(delta, 0.5 * model.coefficients().cpu_active_w, 1e-12);
}

TEST(Power, FractionsClamped) {
  PowerModel model;
  ActivitySlot over;
  over.compute_fraction = 3.0;
  over.tx_fraction = -1.0;
  ActivitySlot maxed;
  maxed.compute_fraction = 1.0;
  maxed.tx_fraction = 0.0;
  EXPECT_NEAR(model.slot_power(over), model.slot_power(maxed), 1e-12);
}

TEST(Power, TimelineAndEnergy) {
  PowerModel model;
  std::vector<ActivitySlot> slots(10);
  for (auto& s : slots) s.compute_fraction = 0.3;
  const auto series = model.timeline(slots);
  ASSERT_EQ(series.size(), 10u);
  for (double w : series) EXPECT_DOUBLE_EQ(w, series[0]);
  EXPECT_NEAR(model.total_energy(slots, 1.0), series[0] * 10, 1e-9);
  EXPECT_NEAR(model.total_energy(slots, 0.5), series[0] * 5, 1e-9);
}

TEST(Power, FullPipelineNearPaperScale) {
  // Full VisualPrint (display + camera + heavy compute + periodic upload)
  // should land in the ~5-7 W ballpark the paper measures; whole-frame
  // offload (less compute, more radio) a watt or two lower.
  PowerModel model;
  ActivitySlot visualprint;
  visualprint.compute_fraction = 0.95;
  visualprint.tx_fraction = 0.25;
  const double vp_w = model.slot_power(visualprint);
  EXPECT_GT(vp_w, 5.0);
  EXPECT_LT(vp_w, 7.5);

  ActivitySlot frame_offload;
  frame_offload.compute_fraction = 0.25;
  frame_offload.tx_fraction = 0.9;
  const double frame_w = model.slot_power(frame_offload);
  EXPECT_GT(frame_w, 4.0);
  EXPECT_LT(frame_w, vp_w);
}

}  // namespace
}  // namespace vp
